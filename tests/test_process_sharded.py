"""Process-level shard workers: shared-memory store, parity, lifecycle, wiring.

Four concern groups:

1. :class:`~repro.ann.shm.SharedMatrix` — segment allocation, in-place
   writes, capacity-doubling growth with deferred retirement, attach/close
   semantics (owner unlinks, attachers never do);
2. the worker command handler (:func:`~repro.ann.process_sharded._execute`)
   exercised *in-process* — the spawned worker loop is a thin shell around
   it, so the search/attach logic gets real coverage without a subprocess;
3. :class:`~repro.ann.process_sharded.ProcessShardedIndex` — deterministic
   surface (routing, growth, errors) plus the hypothesis parity suite
   mirroring ``tests/test_properties_ann.py``: results bit-identical to the
   unsharded ``BruteForceIndex`` over random build/add/update/search
   interleavings.  Worker processes are expensive to spawn (the tests run
   under the spawn start method so they stay coverage-safe), so the property
   tests share one pooled index per shard count and rebuild it per example —
   which doubles as a rebuild-reuses-workers regression test;
4. lifecycle and supervision — ``close()`` leaves no worker processes,
   shared-memory segments, or semaphores behind (asserted via
   ``active_children`` and segment re-attach attempts), a killed worker is
   noticed, restarted and re-attached by the supervisor (bit-identical
   parity after recovery, including kills interleaved with add/update
   sequences under hypothesis), repeated kill/restart cycles leak neither
   processes nor segments, and the ``RealTimeServer.close()`` cascade
   reaches the workers through ``SCCF.close()`` /
   ``UserNeighborhoodComponent.close()``.

The deeper chaos suite (degraded scatter-gather, health surface, pipe
faults, maintenance containment) lives in ``tests/test_fault_tolerance.py``.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import (
    BruteForceIndex,
    NeighborIndex,
    ProcessShardedIndex,
    ShardedIndex,
    SharedMatrix,
)
from repro.ann.process_sharded import _execute
from repro.core import SCCF, RealTimeServer, SCCFConfig, UserNeighborhoodComponent
from repro.testing import FaultInjector


def _assert_unlinked(meta):
    """The segments named by ``meta`` must be gone from the OS namespace."""

    for key in ("vectors", "ids"):
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=str(meta[key]))


# --------------------------------------------------------------------- #
# pooled indexes for the spawn-heavy tests (workers reused across examples)
# --------------------------------------------------------------------- #
_POOL = {}
_CHAOS_POOL = {}


def _pooled_index(num_shards: int) -> ProcessShardedIndex:
    index = _POOL.get(num_shards)
    if index is None:
        index = ProcessShardedIndex(num_shards=num_shards, initial_capacity=8)
        _POOL[num_shards] = index
    return index


def _chaos_index(num_shards: int) -> ProcessShardedIndex:
    """Pooled degrade-policy index for the kill-heavy hypothesis examples.

    The restart budget is effectively unlimited because restarts accumulate
    on *healthy* shards across examples (``build()`` only resets the budget
    of shards it has to revive), and the backoff is tiny so recovery never
    dominates the example's wall-clock.
    """

    index = _CHAOS_POOL.get(num_shards)
    if index is None:
        index = ProcessShardedIndex(
            num_shards=num_shards,
            initial_capacity=8,
            failure_policy="degrade",
            restart_budget=1_000_000,
            restart_backoff=0.01,
            restart_backoff_cap=0.05,
        )
        _CHAOS_POOL[num_shards] = index
    return index


@pytest.fixture(scope="module", autouse=True)
def _close_pool():
    yield
    for pool in (_POOL, _CHAOS_POOL):
        for index in pool.values():
            index.close()
        pool.clear()
    assert multiprocessing.active_children() == []


# --------------------------------------------------------------------- #
# (1) SharedMatrix
# --------------------------------------------------------------------- #
class TestSharedMatrix:
    def test_append_and_view(self):
        with SharedMatrix(dim=3, capacity=4) as store:
            grown = store.append(np.arange(6, dtype=np.float32).reshape(2, 3), [10, 11])
            assert grown is None and store.size == 2
            rows, ids = store.view()
            np.testing.assert_array_equal(ids, [10, 11])
            np.testing.assert_array_equal(rows, np.arange(6, dtype=np.float32).reshape(2, 3))

    def test_set_rows_overwrites_in_place(self):
        with SharedMatrix(dim=2, capacity=4) as store:
            store.append(np.zeros((3, 2), dtype=np.float32), [0, 1, 2])
            store.set_rows([1], np.ones((1, 2), dtype=np.float32))
            rows, _ = store.view()
            np.testing.assert_array_equal(rows[1], [1.0, 1.0])
            np.testing.assert_array_equal(rows[0], [0.0, 0.0])

    def test_growth_doubles_and_reports_new_meta(self):
        with SharedMatrix(dim=2, capacity=2) as store:
            old_meta = store.meta()
            store.append(np.ones((2, 2), dtype=np.float32), [0, 1])
            grown = store.append(np.full((3, 2), 2.0, dtype=np.float32), [2, 3, 4])
            assert grown is not None and grown["capacity"] >= 5
            assert grown["vectors"] != old_meta["vectors"]
            rows, ids = store.view()
            np.testing.assert_array_equal(ids, [0, 1, 2, 3, 4])
            np.testing.assert_array_equal(rows[0], [1.0, 1.0])
            np.testing.assert_array_equal(rows[4], [2.0, 2.0])
            # Outgrown segments stay linked until explicitly released, so
            # attached readers are never yanked mid-request ...
            shared_memory.SharedMemory(name=str(old_meta["vectors"])).close()
            store.release_retired()
            # ... and are unlinked afterwards.
            _assert_unlinked(old_meta)

    def test_attacher_sees_owner_writes_zero_copy(self):
        owner = SharedMatrix(dim=2, capacity=4)
        try:
            owner.append(np.zeros((2, 2), dtype=np.float32), [0, 1])
            reader = SharedMatrix.attach(owner.meta())
            owner.set_rows([0], np.full((1, 2), 7.0, dtype=np.float32))
            rows, ids = reader.view(owner.size)
            np.testing.assert_array_equal(rows[0], [7.0, 7.0])
            np.testing.assert_array_equal(ids, [0, 1])
            reader.close()
            # an attacher's close never unlinks: the owner can still map
            shared_memory.SharedMemory(name=str(owner.meta()["vectors"])).close()
        finally:
            meta = owner.meta()
            owner.close()
        _assert_unlinked(meta)

    def test_close_is_idempotent_and_unlinks(self):
        store = SharedMatrix(dim=2, capacity=2)
        meta = store.meta()
        store.close()
        store.close()
        _assert_unlinked(meta)

    def test_errors(self):
        with pytest.raises(ValueError, match="dim"):
            SharedMatrix(dim=0)
        with pytest.raises(ValueError, match="capacity"):
            SharedMatrix(dim=2, capacity=0)
        with pytest.raises(ValueError, match="float32 or float64"):
            SharedMatrix(dim=2, dtype=np.int64)
        with SharedMatrix(dim=2, capacity=4) as store:
            store.append(np.zeros((2, 2), dtype=np.float32), [0, 1])
            with pytest.raises(ValueError, match="width dim"):
                store.append(np.zeros((1, 3), dtype=np.float32), [2])
            with pytest.raises(ValueError, match="match"):
                store.append(np.zeros((2, 2), dtype=np.float32), [2])
            with pytest.raises(ValueError, match="out of range"):
                store.set_rows([5], np.zeros((1, 2), dtype=np.float32))
            with pytest.raises(ValueError, match="one row per position"):
                store.set_rows([0, 1], np.zeros((1, 2), dtype=np.float32))
            with pytest.raises(ValueError, match="size exceeds"):
                store.view(99)


# --------------------------------------------------------------------- #
# (2) the worker command handler, in-process
# --------------------------------------------------------------------- #
class TestWorkerExecute:
    def test_search_matches_brute_force(self, rng):
        vectors = rng.normal(size=(12, 4))
        flat = BruteForceIndex().build(vectors)
        prepared = flat._prepare_queries(rng.normal(size=(3, 4)))
        with SharedMatrix(dim=4, capacity=16) as store:
            store.append(flat._normalized, np.arange(12))
            (status, results), _ = _execute(store, ("search", prepared, 5, None, 12))
        assert status == "ok"
        for (ids, scores), (flat_ids, flat_scores) in zip(
            results, flat.search_batch(prepared, 5)
        ):
            np.testing.assert_array_equal(ids, flat_ids)
            np.testing.assert_array_equal(scores, flat_scores)

    def test_attach_swaps_matrix(self):
        with SharedMatrix(dim=2, capacity=4) as store:
            store.append(np.ones((1, 2), dtype=np.float32), [0])
            (status, payload), attached = _execute(None, ("attach", store.meta()))
            assert status == "ok" and payload is True
            rows, ids = attached.view(1)
            np.testing.assert_array_equal(ids, [0])
            attached.close()

    def test_ping_and_unknown_and_unattached(self):
        (status, payload), _ = _execute(None, ("ping",))
        assert (status, payload) == ("ok", "pong")
        (status, payload), _ = _execute(None, ("nonsense",))
        assert status == "error" and "unknown command" in payload
        (status, payload), _ = _execute(None, ("search", np.ones((1, 2)), 1, None, 0))
        assert status == "error" and "no attached shard" in payload


# --------------------------------------------------------------------- #
# (3) ProcessShardedIndex deterministic surface
# --------------------------------------------------------------------- #
class TestProcessShardedIndex:
    def test_protocol_conformance(self):
        assert isinstance(ProcessShardedIndex(), NeighborIndex)

    def test_round_robin_partitioning(self, rng):
        index = _pooled_index(3).build(rng.normal(size=(10, 4)))
        assert index.shard_of(0) == (0, 0)
        assert index.shard_of(1) == (1, 0)
        assert index.shard_of(5) == (2, 1)
        assert index.shard_of(9) == (0, 3)
        assert [matrix.size for matrix in index._matrices] == [4, 3, 3]

    def test_self_is_top_neighbor(self, rng):
        vectors = rng.normal(size=(30, 8))
        index = _pooled_index(3).build(vectors)
        ids, sims = index.search(vectors[7], k=3)
        assert ids[0] == 7
        assert sims[0] == pytest.approx(1.0)

    def test_exclusions_pass_through(self, rng):
        vectors = rng.normal(size=(30, 8))
        index = _pooled_index(3).build(vectors)
        ids, _ = index.search(vectors[7], k=5, exclude=np.array([7]))
        assert 7 not in ids

    def test_update_routes_to_owning_shard(self, rng):
        vectors = rng.normal(size=(12, 4))
        index = _pooled_index(3).build(vectors)
        fresh = rng.normal(size=4)
        index.update(7, fresh)
        ids, _ = index.search(fresh, k=1)
        assert ids[0] == 7

    def test_add_grows_across_capacity_doubling(self, rng):
        # initial_capacity=8 per shard: 60 adds over 2 shards force the
        # shared segments to double (twice) and the workers to re-attach.
        vectors = rng.normal(size=(6, 5))
        index = _pooled_index(2).build(vectors)
        flat = BruteForceIndex().build(vectors)
        for _ in range(4):
            extra = rng.normal(size=(15, 5))
            index.add(extra)
            flat.add(extra)
        assert index.size == flat.size == 66
        queries = rng.normal(size=(3, 5))
        for (ids, scores), (flat_ids, flat_scores) in zip(
            index.search_batch(queries, 9), flat.search_batch(queries, 9)
        ):
            np.testing.assert_array_equal(ids, flat_ids)
            np.testing.assert_array_equal(scores, flat_scores)

    def test_custom_ids(self, rng):
        vectors = rng.normal(size=(6, 3))
        index = _pooled_index(2).build(vectors, ids=np.array([10, 20, 30, 40, 50, 60]))
        got, _ = index.search(vectors[2], k=1)
        assert got[0] == 30

    def test_duplicate_ids_rejected_globally(self, rng):
        index = _pooled_index(2).build(rng.normal(size=(6, 3)))
        with pytest.raises(ValueError, match="collide"):
            index.add(rng.normal(size=(1, 3)), ids=np.array([4]))
        with pytest.raises(ValueError, match="unique"):
            index.add(rng.normal(size=(2, 3)), ids=np.array([7, 7]))
        with pytest.raises(ValueError, match="unique"):
            index.build(rng.normal(size=(2, 3)), ids=np.array([1, 1]))
        index.build(rng.normal(size=(6, 3)))  # leave the pooled index usable

    def test_rebuild_reuses_workers_and_changes_dim(self, rng):
        index = _pooled_index(2).build(rng.normal(size=(8, 4)))
        workers_before = [proc.pid for proc in index._procs]
        index.build(rng.normal(size=(5, 6)))  # narrower -> wider remaps segments
        assert [proc.pid for proc in index._procs] == workers_before
        assert index.dim == 6 and index.size == 5

    def test_errors(self, rng):
        with pytest.raises(ValueError):
            ProcessShardedIndex(num_shards=0)
        with pytest.raises(ValueError):
            ProcessShardedIndex(metric="euclidean")
        with pytest.raises(ValueError):
            ProcessShardedIndex(dtype=np.int32)
        with pytest.raises(ValueError):
            ProcessShardedIndex(initial_capacity=0)
        with pytest.raises(ValueError):
            ProcessShardedIndex(response_timeout=0)
        index = ProcessShardedIndex(num_shards=2)
        with pytest.raises(RuntimeError):
            index.search(np.ones(3), k=1)
        with pytest.raises(RuntimeError):
            index.update(0, np.ones(3))
        with pytest.raises(RuntimeError):
            index.add(np.ones((1, 3)))
        with pytest.raises(ValueError, match="zero vectors"):
            index.build(np.empty((0, 3)))
        built = _pooled_index(2).build(rng.normal(size=(6, 3)))
        with pytest.raises(ValueError):
            built.search(np.ones(3), k=0)
        with pytest.raises(ValueError, match="dimensionality"):
            built.search(np.ones(7), k=2)
        with pytest.raises(ValueError):
            built.update(9, np.ones(3))
        with pytest.raises(ValueError):
            built.update_batch([0], np.ones((1, 7)))
        with pytest.raises(ValueError, match="one entry per query"):
            built.search_batch(np.ones((2, 3)), 1, exclude_per_query=[None])


# --------------------------------------------------------------------- #
# (3b) hypothesis parity with the unsharded brute force
# --------------------------------------------------------------------- #
def _run_process_parity(n, d, num_shards, k, seed, ops):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, d))
    flat = BruteForceIndex().build(vectors)
    sharded = _pooled_index(num_shards).build(vectors)

    for op in ops:
        if op == "add":
            count = int(rng.integers(1, 6))
            extra = rng.normal(size=(count, d))
            flat.add(extra)
            sharded.add(extra)
        elif op == "zero":
            # Exact score ties: zero rows (what add_users' gap fill creates)
            # score an exact 0.0 against every query on both paths, so this
            # exercises the deterministic position-order tie-breaking.
            count = int(rng.integers(1, 5))
            positions = rng.integers(0, flat.size, size=count)
            zeros = np.zeros((count, d))
            flat.update_batch(positions, zeros)
            sharded.update_batch(positions, zeros)
        else:
            count = int(rng.integers(1, 5))
            positions = rng.integers(0, flat.size, size=count)
            replacements = rng.normal(size=(count, d))
            flat.update_batch(positions, replacements)
            sharded.update_batch(positions, replacements)

    assert sharded.size == flat.size
    queries = rng.normal(size=(4, d))
    exclusions = [
        None,
        np.asarray([0], dtype=np.int64),
        rng.integers(0, flat.size, size=3),
        np.arange(flat.size, dtype=np.int64),  # everything excluded -> empty
    ]
    flat_results = flat.search_batch(queries, k, exclude_per_query=exclusions)
    sharded_results = sharded.search_batch(queries, k, exclude_per_query=exclusions)
    for (flat_ids, flat_scores), (sh_ids, sh_scores) in zip(flat_results, sharded_results):
        np.testing.assert_array_equal(flat_ids, sh_ids)
        np.testing.assert_array_equal(flat_scores, sh_scores)  # bit-identical


@given(
    num_shards=st.integers(1, 3),
    extra_rows=st.integers(0, 30),
    d=st.integers(2, 12),
    k=st.integers(1, 15),
    seed=st.integers(0, 2**31 - 1),
    ops=st.lists(st.sampled_from(["add", "update", "zero"]), max_size=3),
)
@settings(max_examples=20, deadline=None)
def test_process_parity_with_brute_force(num_shards, extra_rows, d, k, seed, ops):
    """Ids and scores bit-identical when every shard holds >= 2 rows.

    Same contract (and same gemv caveat) as the thread backend's
    ``test_sharded_parity_with_brute_force``: each candidate's score is the
    same query-row/index-row dot product computed by the shard worker over
    the shared-memory rows, and the merge re-rank reproduces ``top_k_rows``'s
    deterministic tie order — zero-row exact ties included.
    """

    _run_process_parity(2 * num_shards + extra_rows, d, num_shards, k, seed, ops)


@given(
    n=st.integers(6, 40),
    d=st.integers(2, 8),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=10, deadline=None)
def test_process_equals_thread_backend(n, d, seed):
    """The two shard backends answer identically (both match brute force)."""

    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, d))
    queries = rng.normal(size=(3, d))
    with ShardedIndex(num_shards=2) as threaded:
        threaded.build(vectors)
        process = _pooled_index(2).build(vectors)
        for (thr_ids, thr_scores), (proc_ids, proc_scores) in zip(
            threaded.search_batch(queries, 5), process.search_batch(queries, 5)
        ):
            np.testing.assert_array_equal(thr_ids, proc_ids)
            np.testing.assert_array_equal(thr_scores, proc_scores)


@given(
    num_shards=st.integers(2, 3),
    seed=st.integers(0, 2**31 - 1),
    ops=st.lists(st.sampled_from(["add", "update", "kill"]), min_size=1, max_size=3),
)
@settings(max_examples=6, deadline=None)
def test_kill_mid_sequence_preserves_parity(num_shards, seed, ops):
    """SIGKILLs interleaved with mutations never corrupt the index.

    Adds and updates land in shared memory whether or not the owning
    worker is alive (a down shard's re-attach is deferred to its restart),
    so once the supervisor has healed every shard the results must be
    bit-identical to a never-faulted ``BruteForceIndex`` over the same
    operation sequence.
    """

    rng = np.random.default_rng(seed)
    d = 4
    vectors = rng.normal(size=(2 * num_shards + 4, d))
    flat = BruteForceIndex().build(vectors)
    sharded = _chaos_index(num_shards).build(vectors)
    injector = FaultInjector(seed=seed)
    for op in ops:
        if op == "kill":
            injector.kill_worker(sharded)
        elif op == "add":
            count = int(rng.integers(1, 6))
            extra = rng.normal(size=(count, d))
            flat.add(extra)
            sharded.add(extra)
        else:
            count = int(rng.integers(1, 5))
            positions = rng.integers(0, flat.size, size=count)
            replacements = rng.normal(size=(count, d))
            flat.update_batch(positions, replacements)
            sharded.update_batch(positions, replacements)
    assert sharded.wait_until_healthy(timeout=30.0)
    queries = rng.normal(size=(3, d))
    for (ids, scores), (flat_ids, flat_scores) in zip(
        sharded.search_batch(queries, 5), flat.search_batch(queries, 5)
    ):
        np.testing.assert_array_equal(ids, flat_ids)
        np.testing.assert_array_equal(scores, flat_scores)


# --------------------------------------------------------------------- #
# (4) lifecycle: no leaks, clean death, close cascade
# --------------------------------------------------------------------- #
class TestLifecycle:
    def test_close_leaves_no_workers_or_segments(self, rng):
        index = ProcessShardedIndex(num_shards=2, initial_capacity=4)
        index.build(rng.normal(size=(10, 3)))
        workers = list(index._procs)
        metas = [matrix.meta() for matrix in index._matrices]
        index.close()
        index.close()  # idempotent
        # close() joins and releases every worker Process object, so none of
        # them can appear among the interpreter's live children
        assert not any(proc in multiprocessing.active_children() for proc in workers)
        for meta in metas:
            _assert_unlinked(meta)
        with pytest.raises(RuntimeError, match="closed"):
            index.search(np.ones(3), k=1)
        with pytest.raises(RuntimeError, match="closed"):
            index.build(rng.normal(size=(4, 3)))

    def test_context_manager_closes(self, rng):
        with ProcessShardedIndex(num_shards=2, initial_capacity=4) as index:
            index.build(rng.normal(size=(8, 3)))
            metas = [matrix.meta() for matrix in index._matrices]
            workers = list(index._procs)
        assert not any(proc in multiprocessing.active_children() for proc in workers)
        for meta in metas:
            _assert_unlinked(meta)

    def test_killed_worker_restarts_and_recovers_parity(self, rng):
        vectors = rng.normal(size=(12, 3))
        flat = BruteForceIndex().build(vectors)
        index = ProcessShardedIndex(
            num_shards=2, initial_capacity=4, restart_backoff=0.01
        )
        index.build(vectors)
        metas = [matrix.meta() for matrix in index._matrices]
        workers = list(index._procs)
        workers[1].kill()
        workers[1].join()
        # Under the default "raise" policy the outage is loud but transient:
        # the supervisor reaps the corpse and schedules a restart, and the
        # error tells the caller a retry (or degrade) is available.
        with pytest.raises(RuntimeError, match="died|down|restart"):
            index.search_batch(rng.normal(size=(2, 3)), 2)
        assert index.wait_until_healthy(timeout=30.0)
        assert index.restarts_total == 1 and index.workers_alive == 2
        # The respawned worker re-attached the same shared-memory shard:
        # serving resumes bit-identical to the never-faulted baseline.
        queries = rng.normal(size=(3, 3))
        for (ids, scores), (flat_ids, flat_scores) in zip(
            index.search_batch(queries, 4), flat.search_batch(queries, 4)
        ):
            np.testing.assert_array_equal(ids, flat_ids)
            np.testing.assert_array_equal(scores, flat_scores)
        index.close()  # no hang, and everything is still reclaimed
        assert not any(proc in multiprocessing.active_children() for proc in workers)
        for meta in metas:
            _assert_unlinked(meta)

    def test_repeated_kill_restart_cycles_leak_nothing(self, rng):
        index = ProcessShardedIndex(
            num_shards=2,
            initial_capacity=4,
            failure_policy="degrade",
            restart_backoff=0.01,
        )
        index.build(rng.normal(size=(10, 3)))
        injector = FaultInjector(seed=5)
        baseline_children = len(multiprocessing.active_children())
        for _ in range(3):
            assert injector.kill_worker(index) is not None
            assert index.wait_until_healthy(timeout=30.0)
            assert index.workers_alive == 2
            # every restart reaps its corpse — no zombie accumulation
            assert len(multiprocessing.active_children()) == baseline_children
        # grow a shard while its worker is down: the outgrown segments must
        # still be retired once the respawned worker acks the new mapping
        old_metas = [matrix.meta() for matrix in index._matrices]
        injector.kill_worker(index, shard=0)
        index.add(rng.normal(size=(30, 3)))  # forces capacity doubling
        assert index.wait_until_healthy(timeout=30.0)
        for old, matrix in zip(old_metas, index._matrices):
            if old["vectors"] != matrix.meta()["vectors"]:
                _assert_unlinked(old)
        assert injector.kills == 4
        metas = [matrix.meta() for matrix in index._matrices]
        workers = list(index._procs)
        index.close()
        assert not any(proc in multiprocessing.active_children() for proc in workers)
        for meta in metas:
            _assert_unlinked(meta)


class TestStackWiring:
    def test_neighborhood_shard_backend_knob(self):
        component = UserNeighborhoodComponent(
            num_neighbors=5, num_shards=2, shard_backend="process"
        )
        assert isinstance(component.index, ProcessShardedIndex)
        component.index.build(np.eye(4))
        workers = list(component.index._procs)
        assert len(workers) == 2
        component.close()
        assert not any(proc in multiprocessing.active_children() for proc in workers)

    def test_thread_backend_stays_default(self):
        component = UserNeighborhoodComponent(num_neighbors=5, num_shards=2)
        assert isinstance(component.index, ShardedIndex)
        component.close()

    def test_backend_validation(self):
        with pytest.raises(ValueError, match="thread.*process"):
            UserNeighborhoodComponent(num_shards=2, shard_backend="greenlet")
        with pytest.raises(ValueError, match="thread.*process"):
            SCCFConfig(shard_backend="greenlet")
        with pytest.raises(ValueError, match="index_factory"):
            UserNeighborhoodComponent(
                num_shards=2, shard_backend="process", index_factory=BruteForceIndex
            )

    def test_server_close_cascades_to_workers(self, tiny_dataset, trained_fism):
        config = SCCFConfig(
            num_neighbors=8,
            candidate_list_size=20,
            merger_epochs=1,
            num_shards=2,
            shard_backend="process",
            cache_capacity=16,
            seed=3,
        )
        sccf = SCCF(trained_fism, config).fit(tiny_dataset, fit_ui_model=False)
        index = sccf.neighborhood.index
        assert isinstance(index, ProcessShardedIndex)
        metas = [matrix.meta() for matrix in index._matrices]
        workers = list(index._procs)
        with RealTimeServer(sccf, tiny_dataset) as server:
            server.observe(0, 1)
            first = server.recommend(0, k=5)
            assert server.recommend(0, k=5) == first  # cache epoch wiring holds
        assert not any(proc in multiprocessing.active_children() for proc in workers)
        for meta in metas:
            _assert_unlinked(meta)

    def test_process_backend_serves_like_thread_backend(self, tiny_dataset, trained_fism):
        def build(backend):
            config = SCCFConfig(
                num_neighbors=8,
                candidate_list_size=20,
                merger_epochs=1,
                num_shards=2,
                shard_backend=backend,
                seed=3,
            )
            return SCCF(trained_fism, config).fit(tiny_dataset, fit_ui_model=False)

        users = list(range(0, tiny_dataset.num_users, 9))
        with build("thread") as threaded, build("process") as process:
            np.testing.assert_array_equal(
                threaded.score_items_batch(users), process.score_items_batch(users)
            )
