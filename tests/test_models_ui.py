"""Tests for the inductive UI models: FISM, SASRec and YouTubeDNN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import Evaluator
from repro.models import FISM, SASRec, YouTubeDNN
from repro.models.base import InductiveUIModel


class TestFISM:
    def test_is_inductive(self, trained_fism):
        assert isinstance(trained_fism, InductiveUIModel)

    def test_training_reduces_loss(self, trained_fism):
        assert trained_fism.loss_history[-1] <= trained_fism.loss_history[0]

    def test_item_embedding_shape(self, trained_fism, tiny_dataset):
        table = trained_fism.item_embeddings()
        assert table.shape == (tiny_dataset.num_items, trained_fism.embedding_dim_config)
        assert trained_fism.embedding_dim == trained_fism.embedding_dim_config

    def test_user_embedding_alpha_pooling(self, trained_fism):
        history = [0, 1, 2, 3]
        embedding = trained_fism.infer_user_embedding(history)
        vectors = trained_fism.item_embeddings()[history]
        expected = vectors.sum(axis=0) / len(history) ** trained_fism.alpha
        np.testing.assert_allclose(embedding, expected, rtol=1e-10)

    def test_inference_uses_recency_window(self, tiny_dataset):
        model = FISM(embedding_dim=8, num_epochs=1, inference_window=2, seed=0).fit(tiny_dataset)
        long_history = list(range(10))
        short_history = long_history[-2:]
        np.testing.assert_allclose(
            model.infer_user_embedding(long_history), model.infer_user_embedding(short_history)
        )

    def test_empty_history_gives_zero_embedding(self, trained_fism):
        np.testing.assert_allclose(
            trained_fism.infer_user_embedding([]), np.zeros(trained_fism.embedding_dim_config)
        )

    def test_out_of_range_items_ignored(self, trained_fism):
        embedding = trained_fism.infer_user_embedding([0, 10**6])
        np.testing.assert_allclose(embedding, trained_fism.infer_user_embedding([0]))

    def test_scores_are_dot_products(self, trained_fism):
        history = [0, 1, 2]
        scores = trained_fism.score_items(0, history=history)
        embedding = trained_fism.infer_user_embedding(history)
        np.testing.assert_allclose(scores, trained_fism.item_embeddings() @ embedding, rtol=1e-10)

    def test_new_interaction_changes_embedding(self, trained_fism):
        base = trained_fism.infer_user_embedding([0, 1, 2])
        updated = trained_fism.infer_user_embedding([0, 1, 2, 5])
        assert not np.allclose(base, updated)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FISM(embedding_dim=0)
        with pytest.raises(ValueError):
            FISM(alpha=2.0)
        with pytest.raises(ValueError):
            FISM(inference_window=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FISM().infer_user_embedding([1])

    def test_produces_meaningful_ranking(self, tiny_dataset):
        evaluator = Evaluator(cutoffs=(20,))
        fism = FISM(embedding_dim=16, num_epochs=5, seed=1).fit(tiny_dataset)
        metrics = evaluator.evaluate(fism, tiny_dataset).metrics
        # Far better than random: a random ranking over ~70 items would give
        # HR@20 ≈ 20/70 ≈ 0.29 only by chance; demand a meaningful signal and
        # valid metric bounds rather than a flaky model comparison.
        assert 0.0 < metrics["HR@20"] <= 1.0
        assert 0.0 < metrics["NDCG@20"] <= metrics["HR@20"]


class TestSASRec:
    def test_is_inductive(self, trained_sasrec):
        assert isinstance(trained_sasrec, InductiveUIModel)

    def test_item_embedding_excludes_padding_row(self, trained_sasrec, tiny_dataset):
        assert trained_sasrec.item_embeddings().shape == (
            tiny_dataset.num_items,
            trained_sasrec.embedding_dim_config,
        )

    def test_training_reduces_loss(self, tiny_dataset):
        model = SASRec(embedding_dim=16, max_length=20, num_epochs=3, seed=2).fit(tiny_dataset)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_user_embedding_depends_on_order(self, trained_sasrec):
        forward = trained_sasrec.infer_user_embedding([1, 2, 3, 4])
        backward = trained_sasrec.infer_user_embedding([4, 3, 2, 1])
        assert not np.allclose(forward, backward)

    def test_long_history_truncated(self, trained_sasrec):
        long_history = list(range(5)) * 20
        truncated = long_history[-trained_sasrec.max_length:]
        np.testing.assert_allclose(
            trained_sasrec.infer_user_embedding(long_history),
            trained_sasrec.infer_user_embedding(truncated),
        )

    def test_empty_history_gives_zero_embedding(self, trained_sasrec):
        np.testing.assert_allclose(
            trained_sasrec.infer_user_embedding([]),
            np.zeros(trained_sasrec.embedding_dim_config),
        )

    def test_inference_is_deterministic(self, trained_sasrec):
        first = trained_sasrec.infer_user_embedding([0, 1, 2])
        second = trained_sasrec.infer_user_embedding([0, 1, 2])
        np.testing.assert_allclose(first, second)

    def test_score_shape(self, trained_sasrec, tiny_dataset):
        assert trained_sasrec.score_items(0).shape == (tiny_dataset.num_items,)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SASRec(embedding_dim=0)
        with pytest.raises(ValueError):
            SASRec(max_length=1)
        with pytest.raises(ValueError):
            SASRec(num_layers=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SASRec().infer_user_embedding([0])


class TestYouTubeDNN:
    @pytest.fixture(scope="class")
    def trained(self, tiny_dataset) -> YouTubeDNN:
        return YouTubeDNN(embedding_dim=16, num_epochs=2, seed=4).fit(tiny_dataset)

    def test_is_inductive(self, trained):
        assert isinstance(trained, InductiveUIModel)

    def test_loss_decreases(self, trained):
        assert trained.loss_history[-1] < trained.loss_history[0]

    def test_embedding_shape(self, trained, tiny_dataset):
        assert trained.item_embeddings().shape == (tiny_dataset.num_items, 16)
        assert trained.infer_user_embedding([0, 1]).shape == (16,)

    def test_empty_history(self, trained):
        np.testing.assert_allclose(trained.infer_user_embedding([]), np.zeros(16))

    def test_history_window(self, tiny_dataset):
        model = YouTubeDNN(embedding_dim=8, num_epochs=1, history_window=3, seed=0).fit(tiny_dataset)
        long_history = list(range(8))
        np.testing.assert_allclose(
            model.infer_user_embedding(long_history),
            model.infer_user_embedding(long_history[-3:]),
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            YouTubeDNN(embedding_dim=0)
        with pytest.raises(ValueError):
            YouTubeDNN(history_window=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            YouTubeDNN().infer_user_embedding([0])
