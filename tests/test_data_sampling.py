"""Unit tests for negative sampling, batching and sequence utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    PADDING_ID,
    NegativeSampler,
    SequenceBatcher,
    UserGroupedBatcher,
    batch_sequences,
    pad_and_truncate,
    pad_sequence,
    recent_window,
    truncate_sequence,
)


class TestSequences:
    def test_truncate_keeps_most_recent(self):
        assert truncate_sequence([1, 2, 3, 4, 5], 3) == [3, 4, 5]

    def test_truncate_shorter_noop(self):
        assert truncate_sequence([1, 2], 5) == [1, 2]

    def test_truncate_invalid(self):
        with pytest.raises(ValueError):
            truncate_sequence([1], 0)

    def test_pad_left(self):
        padded = pad_sequence([7, 8], 4)
        np.testing.assert_array_equal(padded, [PADDING_ID, PADDING_ID, 7, 8])

    def test_pad_too_long_raises(self):
        with pytest.raises(ValueError):
            pad_sequence([1, 2, 3], 2)

    def test_pad_and_truncate(self):
        out = pad_and_truncate([1, 2, 3, 4, 5], 3)
        np.testing.assert_array_equal(out, [3, 4, 5])
        out = pad_and_truncate([1], 3)
        np.testing.assert_array_equal(out, [0, 0, 1])

    def test_batch_sequences(self):
        batch = batch_sequences([[1], [2, 3], [4, 5, 6, 7]], max_length=3)
        assert batch.shape == (3, 3)
        np.testing.assert_array_equal(batch[2], [5, 6, 7])

    def test_recent_window(self):
        assert recent_window([1, 2, 3, 4], 2) == [3, 4]
        assert recent_window([1], 5) == [1]
        with pytest.raises(ValueError):
            recent_window([1], 0)

    @given(st.lists(st.integers(1, 100), max_size=30), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_pad_and_truncate_invariants(self, sequence, length):
        out = pad_and_truncate(sequence, length)
        assert out.shape == (length,)
        real = out[out != PADDING_ID]
        expected = [x for x in sequence[-length:] if x != PADDING_ID]
        np.testing.assert_array_equal(real, expected)


class TestNegativeSampler:
    def test_never_returns_excluded(self, rng):
        sampler = NegativeSampler(20, rng)
        exclude = {0, 1, 2, 3, 4}
        for _ in range(20):
            samples = sampler.sample(exclude, 5)
            assert not set(samples.tolist()) & exclude

    def test_sample_size(self, rng):
        sampler = NegativeSampler(10, rng)
        assert sampler.sample(set(), 7).shape == (7,)
        assert sampler.sample(set(), 0).shape == (0,)

    def test_all_items_excluded_raises(self, rng):
        sampler = NegativeSampler(3, rng)
        with pytest.raises(ValueError):
            sampler.sample({0, 1, 2}, 1)

    def test_nearly_full_exclusion_finds_remaining_item(self, rng):
        sampler = NegativeSampler(5, rng)
        samples = sampler.sample({0, 1, 2, 3}, 3)
        assert set(samples.tolist()) == {4}

    def test_invalid_num_items(self):
        with pytest.raises(ValueError):
            NegativeSampler(0)


class TestUserGroupedBatcher:
    def test_batches_cover_users_with_history(self, tiny_dataset, rng):
        batcher = UserGroupedBatcher(tiny_dataset, negatives_per_positive=2, rng=rng)
        batches = list(batcher.epoch())
        users_seen = {batch.user_id for batch in batches}
        expected = {
            user for user, seq in tiny_dataset.train.user_sequences().items() if len(seq) >= 2
        }
        assert users_seen == expected

    def test_negative_shape_and_validity(self, tiny_dataset, rng):
        batcher = UserGroupedBatcher(tiny_dataset, negatives_per_positive=3, rng=rng)
        batch = next(iter(batcher.epoch()))
        assert batch.negative_items.shape == (len(batch.positive_items), 3)
        history = set(batch.history.tolist())
        assert not set(batch.negative_items.reshape(-1).tolist()) & history

    def test_invalid_negatives(self, tiny_dataset):
        with pytest.raises(ValueError):
            UserGroupedBatcher(tiny_dataset, negatives_per_positive=0)


class TestSequenceBatcher:
    def test_batch_shapes(self, tiny_dataset, rng):
        batcher = SequenceBatcher(tiny_dataset, max_length=10, batch_size=8, rng=rng)
        batch = next(iter(batcher.epoch()))
        assert batch.input_sequences.shape == batch.positive_targets.shape
        assert batch.input_sequences.shape[1] == 10
        assert batch.mask.shape == batch.input_sequences.shape

    def test_targets_are_shifted_inputs(self, tiny_dataset, rng):
        batcher = SequenceBatcher(tiny_dataset, max_length=10, batch_size=4, rng=rng)
        batch = next(iter(batcher.epoch()))
        for row in range(len(batch.user_ids)):
            inputs = batch.input_sequences[row]
            positives = batch.positive_targets[row]
            real = inputs != PADDING_ID
            if real.sum() >= 2:
                # the target at position t equals the input at position t+1
                idx = np.where(real)[0]
                np.testing.assert_array_equal(positives[idx[:-1]], inputs[idx[1:]])

    def test_mask_marks_real_targets(self, tiny_dataset, rng):
        batcher = SequenceBatcher(tiny_dataset, max_length=12, batch_size=4, rng=rng)
        batch = next(iter(batcher.epoch()))
        np.testing.assert_array_equal(batch.mask, (batch.positive_targets != PADDING_ID).astype(float))

    def test_negatives_offset_and_not_in_history(self, tiny_dataset, rng):
        batcher = SequenceBatcher(tiny_dataset, max_length=10, batch_size=4, rng=rng)
        batch = next(iter(batcher.epoch()))
        histories = tiny_dataset.train.user_sequences()
        for row, user in enumerate(batch.user_ids):
            history = set(histories[int(user)])
            negatives = batch.negative_targets[row][batch.mask[row] > 0]
            assert all(1 <= n <= tiny_dataset.num_items for n in negatives)
            assert not {int(n) - 1 for n in negatives} & history

    def test_number_of_batches(self, tiny_dataset, rng):
        batcher = SequenceBatcher(tiny_dataset, max_length=10, batch_size=7, rng=rng)
        assert len(list(batcher.epoch())) == len(batcher)

    def test_invalid_params(self, tiny_dataset):
        with pytest.raises(ValueError):
            SequenceBatcher(tiny_dataset, max_length=1)
        with pytest.raises(ValueError):
            SequenceBatcher(tiny_dataset, batch_size=0)
