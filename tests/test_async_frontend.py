"""Tests for ``repro.serving`` — the cross-request micro-batching front-end.

The contract under test, in rough order of importance:

* **Parity** — recommendations served from coalesced windows are identical
  to the sequential batch-of-one loop, including through observes (version
  bumps) and cache interplay (repeat users inside and across windows).
* **Deadlines include queue wait** — a request that expires while queued
  short-circuits to the stale/empty fallback tail without consuming a
  scoring slot, and the latency sample covers the wait.
* **Backpressure** — at queue capacity ``"reject"`` raises
  :class:`QueueFull` immediately, ``"wait"`` suspends the caller.
* **Chaos** — a worker killed mid-window (process backend,
  ``failure_policy="degrade"``) never loses or duplicates a request: every
  caller gets exactly one response.

The suite drives the front-end with ``asyncio.run`` inside ordinary sync
tests — no async test plugin needed.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

import repro.ann.ivf as ivf_module
from repro.ann import IVFIndex
from repro.core import SCCF, SCCFConfig
from repro.core.realtime import RealTimeServer, RecommendRequest
from repro.serving import AsyncFrontend, FrontendStats, QueueFull
from repro.testing import FaultInjector, InjectedFault


def _fresh_server(tiny_dataset, trained_fism, cache_capacity=None) -> RealTimeServer:
    """A server over its own SCCF instance, so mutations don't leak across tests."""

    config = SCCFConfig(
        num_neighbors=10,
        candidate_list_size=30,
        merger_epochs=3,
        seed=3,
        **({} if cache_capacity is None else {"cache_capacity": cache_capacity}),
    )
    sccf = SCCF(trained_fism, config).fit(tiny_dataset, fit_ui_model=False)
    return RealTimeServer(sccf, tiny_dataset)


def _mixed_workload(tiny_dataset, num_requests: int = 48, seed: int = 7):
    """Zipf-ish seeded request mix with repeat users (dedup + cache coverage)."""

    rng = np.random.default_rng(seed)
    users = tiny_dataset.evaluation_users()[:8]
    recommends = [int(users[rng.integers(0, len(users))]) for _ in range(num_requests)]
    observes = [
        (int(users[rng.integers(0, len(users))]), int(rng.integers(0, tiny_dataset.num_items)))
        for _ in range(num_requests // 2)
    ]
    return recommends, observes


# --------------------------------------------------------------------- #
# parity: coalesced output == sequential batch-of-one output
# --------------------------------------------------------------------- #
class TestCoalescedParity:
    @pytest.mark.parametrize("cache_capacity", [None, 256])
    def test_windows_match_sequential_serving(self, tiny_dataset, trained_fism, cache_capacity):
        coalesced = _fresh_server(tiny_dataset, trained_fism, cache_capacity)
        sequential = _fresh_server(tiny_dataset, trained_fism, cache_capacity)
        recommends, observes = _mixed_workload(tiny_dataset)

        async def through_frontend():
            async with AsyncFrontend(coalesced, max_batch=16, max_wait_ms=5.0) as frontend:
                first = await asyncio.gather(
                    *(frontend.recommend(user, k=10) for user in recommends)
                )
                await asyncio.gather(
                    *(frontend.observe(user, item) for user, item in observes)
                )
                second = await asyncio.gather(
                    *(frontend.recommend(user, k=10) for user in recommends)
                )
                assert frontend.stats.mean_recommend_window() > 1.0  # it did coalesce
            return first, second

        first, second = asyncio.run(through_frontend())

        seq_first = [sequential.recommend(user, k=10) for user in recommends]
        for user, item in observes:
            sequential.observe(user, item)
        seq_second = [sequential.recommend(user, k=10) for user in recommends]

        assert list(first) == seq_first
        assert list(second) == seq_second
        # ingestion state is identical too, not just the served lists
        for user in {user for user, _ in observes}:
            assert coalesced.history(user) == sequential.history(user)

    def test_interleaved_singles_match(self, tiny_dataset, trained_fism):
        # A lone request per window (no concurrency) is the degenerate case:
        # the front-end must not change anything relative to direct calls.
        coalesced = _fresh_server(tiny_dataset, trained_fism)
        direct = _fresh_server(tiny_dataset, trained_fism)
        user = tiny_dataset.evaluation_users()[0]

        async def singles():
            async with AsyncFrontend(coalesced, max_batch=8, max_wait_ms=0.0) as frontend:
                out = []
                for item in (1, 3, 5):
                    out.append(await frontend.recommend(user, k=5))
                    await frontend.observe(user, item)
                return out

        results = asyncio.run(singles())
        expected = []
        for item in (1, 3, 5):
            expected.append(direct.recommend(user, k=5))
            direct.observe(user, item)
        assert results == expected


# --------------------------------------------------------------------- #
# deadlines include queue wait
# --------------------------------------------------------------------- #
class TestDeadlines:
    def test_expired_request_short_circuits_without_scoring(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        user = tiny_dataset.evaluation_users()[0]
        calls = []
        original = server.sccf.score_items_batch
        server.sccf.score_items_batch = lambda *a, **kw: calls.append(a) or original(*a, **kw)

        # start stamped one full second ago: the 50 ms deadline was blown in
        # the queue, so the request must not reach the scoring pass at all
        expired = RecommendRequest(
            user_id=user, k=5, deadline_ms=50.0, start=time.perf_counter() - 1.0
        )
        misses_before = server.deadline_misses
        assert server.recommend_batch([expired]) == [[]]
        assert server.deadline_misses == misses_before + 1
        assert calls == []
        # the latency sample covers the queue wait, not just server time
        assert server.recommend_latencies[-1] >= 1000.0

        # same request with headroom scores normally
        fresh = RecommendRequest(user_id=user, k=5, deadline_ms=10_000.0)
        assert server.recommend_batch([fresh])[0]
        assert len(calls) == 1

    def test_expired_request_prefers_stale_cache(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism, cache_capacity=64)
        user = tiny_dataset.evaluation_users()[0]
        baseline = server.recommend(user, k=5)
        server.observe(user, 1)  # token-stale but still stored
        expired = RecommendRequest(
            user_id=user, k=5, deadline_ms=50.0, start=time.perf_counter() - 1.0
        )
        assert server.recommend_batch([expired]) == [baseline]
        assert server.served_stale == 1

    def test_frontend_queue_wait_counts_against_deadline(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        users = tiny_dataset.evaluation_users()[:4]

        async def burst():
            async with AsyncFrontend(server, max_batch=4, max_wait_ms=20.0) as frontend:
                # 0.01 ms expires during the window-build wait alone; every
                # request short-circuits to [] and counts a miss
                return await asyncio.gather(
                    *(frontend.recommend(u, k=5, deadline_ms=0.01) for u in users)
                )

        results = asyncio.run(burst())
        assert list(results) == [[] for _ in users]
        assert server.deadline_misses == len(users)
        # the recorded samples include the queue wait they actually suffered
        assert all(sample >= 0.01 for sample in server.recommend_latencies)


# --------------------------------------------------------------------- #
# backpressure at queue capacity
# --------------------------------------------------------------------- #
class TestBackpressure:
    @staticmethod
    async def _frozen_frontend(server, **kwargs):
        """A started frontend whose drainers are stopped: the queue only fills.

        Execution is synchronous on the loop thread, so a live drainer can
        empty the queue between any two enqueues — freezing it is the only
        deterministic way to observe the at-capacity boundary.
        """

        frontend = AsyncFrontend(server, **kwargs)
        await frontend.start()
        for task in frontend._drainers:
            task.cancel()
        await asyncio.gather(*frontend._drainers, return_exceptions=True)
        frontend._drainers = []
        return frontend

    def test_reject_mode_raises_queue_full(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        user = tiny_dataset.evaluation_users()[0]

        async def scenario():
            frontend = await self._frozen_frontend(
                server, max_queue=2, backpressure="reject"
            )
            waiters = [
                asyncio.ensure_future(frontend.recommend(user, k=5)) for _ in range(2)
            ]
            await asyncio.sleep(0)  # both enqueue (queue now at capacity)
            with pytest.raises(QueueFull, match="capacity"):
                await frontend.recommend(user, k=5)
            assert frontend.stats.rejected_requests == 1
            assert frontend.stats.recommend_requests == 2  # rejects aren't admitted
            for waiter in waiters:
                waiter.cancel()
            await asyncio.gather(*waiters, return_exceptions=True)

        asyncio.run(scenario())

    def test_wait_mode_suspends_the_caller(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        user = tiny_dataset.evaluation_users()[0]

        async def scenario():
            frontend = await self._frozen_frontend(server, max_queue=1, backpressure="wait")
            first = asyncio.ensure_future(frontend.recommend(user, k=5))
            await asyncio.sleep(0)  # first fills the queue
            second = asyncio.ensure_future(frontend.recommend(user, k=5))
            await asyncio.sleep(0.05)
            # the second caller is parked in queue.put, not rejected
            assert not second.done()
            assert frontend.stats.rejected_requests == 0
            for task in (first, second):
                task.cancel()
            await asyncio.gather(first, second, return_exceptions=True)

        asyncio.run(scenario())

    def test_invalid_knobs_rejected(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        with pytest.raises(ValueError, match="max_batch"):
            AsyncFrontend(server, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            AsyncFrontend(server, max_wait_ms=-1.0)
        with pytest.raises(ValueError, match="max_queue"):
            AsyncFrontend(server, max_queue=0)
        with pytest.raises(ValueError, match="backpressure"):
            AsyncFrontend(server, backpressure="drop")

    def test_unstarted_frontend_refuses_requests(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        frontend = AsyncFrontend(server)

        async def call():
            await frontend.recommend(tiny_dataset.evaluation_users()[0], k=5)

        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(call())


# --------------------------------------------------------------------- #
# admission validation (the validate-first bugfix, at both layers)
# --------------------------------------------------------------------- #
class TestAdmissionValidation:
    def test_degenerate_k_is_validated_first(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        user = tiny_dataset.evaluation_users()[0]
        # the old path returned [] before looking at user_id or deadline_ms
        with pytest.raises(ValueError, match="user_id"):
            server.recommend(float("nan"), k=0)
        with pytest.raises(ValueError, match="deadline_ms"):
            server.recommend(user, k=0, deadline_ms=-5.0)
        # ... and a valid degenerate request still returns [] with a sample
        samples_before = len(server.recommend_latencies)
        assert server.recommend(user, k=-3) == []
        assert len(server.recommend_latencies) == samples_before + 1

    def test_one_bad_request_fails_the_whole_window_upfront(self, tiny_dataset, trained_fism):
        # recommend_batch is validate-first: nothing is served, no telemetry
        # moves, when any request in the window is malformed
        server = _fresh_server(tiny_dataset, trained_fism)
        good = RecommendRequest(user_id=tiny_dataset.evaluation_users()[0], k=5)
        bad = RecommendRequest(user_id=float("inf"), k=5)
        samples_before = len(server.recommend_latencies)
        with pytest.raises(ValueError, match="user_id"):
            server.recommend_batch([good, bad])
        assert len(server.recommend_latencies) == samples_before

    def test_frontend_rejects_malformed_requests_at_the_caller(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        user = tiny_dataset.evaluation_users()[0]

        async def scenario():
            async with AsyncFrontend(server, max_batch=4, max_wait_ms=1.0) as frontend:
                with pytest.raises(ValueError, match="user_id"):
                    await frontend.recommend(float("nan"), k=5)
                with pytest.raises(ValueError, match="item_id"):
                    await frontend.observe(user, float("nan"))
                # a malformed request never reaches a window, so well-formed
                # neighbours are unaffected
                assert await frontend.recommend(user, k=5)
                assert frontend.stats.recommend_requests == 1

        asyncio.run(scenario())

    def test_empty_score_row_returns_empty_list(self, tiny_dataset, trained_fism):
        # the argpartition(kth=-1) guard: a zero-width score row (zero-item
        # catalog, fully-degraded shard answer) yields [] instead of crashing
        server = _fresh_server(tiny_dataset, trained_fism)
        user = tiny_dataset.evaluation_users()[0]
        server.sccf.score_items_batch = lambda users, histories=None: np.empty(
            (len(users), 0)
        )
        assert server.recommend(user, k=5, exclude_seen=False) == []
        assert server._top_items(np.empty(0), 5) == []


# --------------------------------------------------------------------- #
# SLO accounting
# --------------------------------------------------------------------- #
class TestSloAccounting:
    def test_percentiles_surface_through_health(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        report = server.health()
        assert report.recommend_p50_ms is None and report.observe_p99_ms is None

        recommends, observes = _mixed_workload(tiny_dataset, num_requests=16)

        async def drive():
            async with AsyncFrontend(server, max_batch=8, max_wait_ms=2.0) as frontend:
                await asyncio.gather(*(frontend.recommend(u, k=5) for u in recommends))
                await asyncio.gather(*(frontend.observe(u, i) for u, i in observes))

        asyncio.run(drive())
        report = server.health()
        assert 0.0 < report.recommend_p50_ms <= report.recommend_p99_ms
        assert 0.0 < report.observe_p50_ms <= report.observe_p99_ms

    def test_observe_samples_are_per_request_not_per_window(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        users = tiny_dataset.evaluation_users()[:6]

        async def drive():
            async with AsyncFrontend(server, max_batch=6, max_wait_ms=5.0) as frontend:
                await asyncio.gather(*(frontend.observe(u, 0) for u in users))
                assert frontend.stats.observe_windows < len(users)  # it coalesced

        asyncio.run(drive())
        assert len(server.observe_request_latencies) == len(users)

    def test_request_starts_length_is_validated(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        with pytest.raises(ValueError, match="request_starts"):
            server.observe_batch([(0, 0), (1, 1)], request_starts=[time.perf_counter()])


# --------------------------------------------------------------------- #
# chaos: worker kill mid-window never loses or duplicates a request
# --------------------------------------------------------------------- #
class TestChaos:
    @pytest.fixture()
    def process_server(self, tiny_dataset, trained_fism):
        config = SCCFConfig(
            num_neighbors=8,
            candidate_list_size=20,
            merger_epochs=1,
            num_shards=2,
            shard_backend="process",
            failure_policy="degrade",
            cache_capacity=64,
            seed=3,
        )
        sccf = SCCF(trained_fism, config).fit(tiny_dataset, fit_ui_model=False)
        server = RealTimeServer(sccf, tiny_dataset, default_deadline_ms=10_000.0)
        yield server
        server.close()

    def test_kill_mid_stream_answers_every_request_exactly_once(self, process_server, tiny_dataset):
        server = process_server
        index = server.sccf.neighborhood.index
        injector = FaultInjector(seed=5)
        recommends, observes = _mixed_workload(tiny_dataset, num_requests=24, seed=5)

        async def drive():
            async with AsyncFrontend(server, max_batch=8, max_wait_ms=2.0) as frontend:
                first = await asyncio.gather(
                    *(frontend.recommend(u, k=5) for u in recommends[:12])
                )
                injector.kill_worker(index)  # mid-stream, windows keep flowing
                second = await asyncio.gather(
                    *(frontend.recommend(u, k=5) for u in recommends[12:]),
                    *(frontend.observe(u, i) for u, i in observes),
                )
                return first, second, frontend.stats

        first, second, stats = asyncio.run(drive())

        # exactly one response per admitted request — nothing lost, nothing
        # duplicated, nothing raised (degrade policy absorbs the kill)
        assert len(first) + len(second) == len(recommends) + len(observes)
        assert all(isinstance(result, list) for result in first)
        assert stats.recommend_requests == len(recommends)
        assert stats.observe_requests == len(observes)
        assert server.recommend_failures == 0
        # ... and the pool heals afterwards
        assert index.wait_until_healthy(timeout=30.0)
        assert server.health().healthy

    @pytest.fixture()
    def ivf_server(self, tiny_dataset, trained_fism):
        sccf = SCCF(
            trained_fism,
            SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2, seed=3),
            neighbor_index=IVFIndex(num_cells=4, n_probe=2, rng=np.random.default_rng(7)),
        ).fit(tiny_dataset, fit_ui_model=False)
        return RealTimeServer(sccf, tiny_dataset, default_deadline_ms=10_000.0)

    def test_shadow_retrain_under_open_loop_burst(self, ivf_server, tiny_dataset, trained_fism):
        """A background shadow retrain publishes mid-burst: every admitted
        request is answered, no request ever sees the half-built shadow (the
        epoch only moves at the publish poll), and the post-swap index is
        bit-identical to a quiet synchronous retrain plus the same mutations."""

        server = ivf_server
        control_sccf = SCCF(
            trained_fism,
            SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2, seed=3),
            neighbor_index=IVFIndex(num_cells=4, n_probe=2, rng=np.random.default_rng(7)),
        ).fit(tiny_dataset, fit_ui_model=False)
        control = RealTimeServer(control_sccf, tiny_dataset)
        recommends, observes = _mixed_workload(tiny_dataset, num_requests=24, seed=11)
        live = server.sccf.neighborhood.index

        async def drive():
            async with AsyncFrontend(server, max_batch=8, max_wait_ms=2.0) as frontend:
                first = await asyncio.gather(
                    *(frontend.recommend(u, k=5) for u in recommends[:12])
                )
                assert server.begin_shadow_maintenance(imbalance_threshold=0.5) is None
                # burst keeps flowing while the worker re-clusters the clone;
                # observes land on the live index and the journal
                second = await asyncio.gather(
                    *(frontend.recommend(u, k=5) for u in recommends[12:]),
                    *(frontend.observe(u, i) for u, i in observes),
                )
                # nothing served from the half-built shadow: the live index
                # object keeps serving until the publish poll below
                assert server.sccf.neighborhood.index is live
                epoch_at_publish = live.epoch
                report = server.poll_shadow_maintenance(wait=True)
                third = await asyncio.gather(
                    *(frontend.recommend(u, k=5) for u in recommends)
                )
                return first, second, third, report, epoch_at_publish, frontend.stats

        first, second, third, report, epoch_at_publish, stats = asyncio.run(drive())

        # every admitted request got exactly one answer
        assert len(first) + len(second) + len(third) == 2 * len(recommends) + len(observes)
        assert all(isinstance(r, list) for r in first + third)
        assert stats.recommend_requests == 2 * len(recommends)
        assert stats.observe_requests == len(observes)
        assert server.recommend_failures == 0

        # the swap happened exactly once, with the mid-burst mutations replayed
        assert report is not None and report.retrained and report.shadow
        assert report.journaled_mutations >= 1
        assert server.sccf.neighborhood.index is not live
        assert server.sccf.neighborhood.index.epoch >= epoch_at_publish + 1
        assert server.health().last_maintenance_error is None

        # bit-identity vs. a quiet sync retrain followed by the same mutations
        control.maintain(imbalance_threshold=0.5, shadow=True)
        control.observe_batch(list(observes))
        expected = [control.recommend(u, k=5) for u in recommends]
        assert list(third) == expected

    def test_shadow_failure_under_burst_leaves_serving_available(
        self, ivf_server, tiny_dataset, monkeypatch
    ):
        """A shadow build that dies mid-burst is contained: the burst is still
        fully answered from the untouched live index, the failure lands in
        ``health()``, and the next retrain succeeds."""

        server = ivf_server
        recommends, observes = _mixed_workload(tiny_dataset, num_requests=16, seed=13)
        live = server.sccf.neighborhood.index

        def exploding_kmeans(*args, **kwargs):
            raise InjectedFault("kmeans died mid-recluster")

        monkeypatch.setattr(ivf_module, "kmeans", exploding_kmeans)

        async def drive():
            async with AsyncFrontend(server, max_batch=8, max_wait_ms=2.0) as frontend:
                assert server.begin_shadow_maintenance(imbalance_threshold=0.5) is None
                burst = await asyncio.gather(
                    *(frontend.recommend(u, k=5) for u in recommends),
                    *(frontend.observe(u, i) for u, i in observes),
                )
                with pytest.raises(InjectedFault):
                    server.poll_shadow_maintenance(wait=True)
                # serving never blinked: the live index answers after the wreck
                after = await asyncio.gather(
                    *(frontend.recommend(u, k=5) for u in recommends[:4])
                )
                return burst, after, frontend.stats

        burst, after, stats = asyncio.run(drive())
        monkeypatch.undo()

        assert len(burst) == len(recommends) + len(observes)
        assert all(isinstance(r, list) for r in after)
        assert stats.recommend_requests == len(recommends) + 4
        assert server.recommend_failures == 0
        # live index still installed, failure on the record for operators
        assert server.sccf.neighborhood.index is live
        assert not server.sccf.neighborhood.index_journal_active
        health = server.health()
        assert health.last_maintenance_error is not None
        assert "InjectedFault" in health.last_maintenance_error
        # ... and the system recovers: the next shadow pass publishes
        assert server.begin_shadow_maintenance(imbalance_threshold=0.5) is None
        report = server.poll_shadow_maintenance(wait=True)
        assert report is not None and report.retrained and report.error is None


# --------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------- #
class TestLifecycle:
    def test_close_flushes_admitted_requests(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        users = tiny_dataset.evaluation_users()[:4]

        async def scenario():
            frontend = AsyncFrontend(server, max_batch=64, max_wait_ms=50.0)
            await frontend.start()
            pending = [
                asyncio.ensure_future(frontend.recommend(u, k=5)) for u in users
            ]
            await asyncio.sleep(0)  # enqueued, window still open
            await frontend.close()  # must flush, not drop
            results = await asyncio.gather(*pending)
            assert all(results)
            await frontend.close()  # idempotent

        asyncio.run(scenario())

    def test_close_drains_observes_through_wal(self, tiny_dataset, trained_fism, tmp_path):
        # A lazy fsync policy that never flushes on its own: if close() did
        # not force a sync after draining the observe window, acknowledged
        # events would sit in the OS cache when the process exits.
        from repro.core.wal import WriteAheadLog, decode_payload, replay_wal

        server = _fresh_server(tiny_dataset, trained_fism)
        server.wal = WriteAheadLog(tmp_path, fsync="interval", interval_ms=1e9)
        users = tiny_dataset.evaluation_users()[:4]
        events = [(int(user), 1 + i) for i, user in enumerate(users)]

        async def scenario():
            frontend = AsyncFrontend(server, max_batch=64, max_wait_ms=50.0)
            await frontend.start()
            pending = [
                asyncio.ensure_future(frontend.observe(u, i)) for u, i in events
            ]
            await asyncio.sleep(0)  # admitted, window still open
            await frontend.close()
            await asyncio.gather(*pending)

        asyncio.run(scenario())
        stats = server.wal.stats()
        assert stats.fsyncs >= 1  # close() forced the flush the policy never would
        assert stats.pending == 0  # nothing acknowledged is still cache-only
        journaled = [
            pair
            for _, payload in replay_wal(tmp_path)
            for pair in decode_payload(payload)[1]
        ]
        assert journaled == events
        server.wal.close()

    def test_double_start_rejected(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)

        async def scenario():
            async with AsyncFrontend(server) as frontend:
                with pytest.raises(RuntimeError, match="already started"):
                    await frontend.start()

        asyncio.run(scenario())

    def test_stats_window_means(self):
        stats = FrontendStats()
        assert stats.mean_recommend_window() is None
        stats.recommend_requests, stats.recommend_windows = 12, 3
        assert stats.mean_recommend_window() == 4.0
