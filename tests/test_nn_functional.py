"""Unit tests for repro.nn.functional: embedding, softmax, dropout, losses."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F


class TestEmbedding:
    def test_lookup_shape(self):
        weight = Tensor(np.arange(12, dtype=float).reshape(4, 3), requires_grad=True)
        out = F.embedding(weight, np.array([0, 2]))
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data[1], [6.0, 7.0, 8.0])

    def test_lookup_2d_indices(self):
        weight = Tensor(np.ones((5, 4)), requires_grad=True)
        out = F.embedding(weight, np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 4)

    def test_gradient_scatter_adds_for_repeated_indices(self):
        weight = Tensor(np.zeros((4, 2)), requires_grad=True)
        out = F.embedding(weight, np.array([1, 1, 3]))
        out.sum().backward()
        np.testing.assert_allclose(weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(weight.grad[3], [1.0, 1.0])
        np.testing.assert_allclose(weight.grad[0], [0.0, 0.0])


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 5)))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3), rtol=1e-10)

    def test_stability_with_large_values(self):
        x = Tensor(np.array([[1000.0, 1001.0, 999.0]]))
        out = F.softmax(x)
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data.sum(), 1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), rtol=1e-8
        )

    def test_softmax_gradient_sums_to_zero(self):
        x = Tensor(np.array([0.5, 1.0, -0.5]), requires_grad=True)
        out = F.softmax(x)
        out[np.array([0])].sum().backward()
        # d softmax_i / d x sums to zero across inputs
        assert abs(x.grad.sum()) < 1e-10

    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_softmax_invariant_to_shift(self, values):
        x = np.array(values)
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-8)


class TestConcatenateAndStack:
    def test_concatenate_values(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        out = F.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)

    def test_concatenate_gradient_routing(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = F.concatenate([a, b], axis=1)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, 2 * np.ones((2, 3)))

    def test_concatenate_axis0(self):
        a = Tensor(np.ones((1, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = F.concatenate([a, b], axis=0)
        assert out.shape == (3, 3)
        out.sum().backward()
        assert a.grad.shape == (1, 3)

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = F.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))


class TestDropout:
    def test_disabled_in_eval(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, rate=0.5, training=False)
        assert out is x

    def test_zero_rate_is_noop(self):
        x = Tensor(np.ones(5))
        assert F.dropout(x, rate=0.0, training=True) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, rate=0.5, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), rate=1.0, training=True)


class TestMasking:
    def test_where(self):
        cond = np.array([True, False, True])
        out = F.where(cond, Tensor(np.ones(3)), Tensor(np.zeros(3)))
        np.testing.assert_allclose(out.data, [1.0, 0.0, 1.0])

    def test_where_gradients(self):
        cond = np.array([True, False])
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        F.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_masked_fill(self):
        x = Tensor(np.zeros((2, 2)))
        mask = np.array([[True, False], [False, True]])
        out = F.masked_fill(x, mask, -1e9)
        assert out.data[0, 0] == -1e9
        assert out.data[0, 1] == 0.0

    def test_clip_gradient(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        F.clip(x, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestLosses:
    def test_bce_matches_reference(self):
        logits = Tensor(np.array([0.0, 2.0, -2.0]))
        targets = np.array([1.0, 1.0, 0.0])
        loss = F.binary_cross_entropy_with_logits(logits, targets)
        probabilities = 1 / (1 + np.exp(-logits.data))
        reference = -np.mean(
            targets * np.log(probabilities) + (1 - targets) * np.log(1 - probabilities)
        )
        assert loss.item() == pytest.approx(reference, rel=1e-8)

    def test_bce_stable_for_extreme_logits(self):
        logits = Tensor(np.array([1000.0, -1000.0]), requires_grad=True)
        loss = F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.all(np.isfinite(logits.grad))

    def test_bce_gradient_is_sigmoid_minus_target(self):
        logits = Tensor(np.array([0.3, -0.7]), requires_grad=True)
        targets = np.array([1.0, 0.0])
        F.binary_cross_entropy_with_logits(logits, targets, reduction="sum").backward()
        expected = 1 / (1 + np.exp(-logits.data)) - targets
        np.testing.assert_allclose(logits.grad, expected, rtol=1e-8)

    def test_bce_reductions(self):
        logits = Tensor(np.array([0.0, 0.0]))
        targets = np.array([1.0, 0.0])
        none = F.binary_cross_entropy_with_logits(logits, targets, reduction="none")
        assert none.shape == (2,)
        total = F.binary_cross_entropy_with_logits(logits, targets, reduction="sum")
        assert total.item() == pytest.approx(none.data.sum())

    def test_bce_unknown_reduction_raises(self):
        with pytest.raises(ValueError):
            F.binary_cross_entropy_with_logits(Tensor(np.zeros(2)), np.zeros(2), reduction="bad")

    def test_bpr_loss_decreases_when_positive_beats_negative(self):
        good = F.bpr_loss(Tensor(np.array([5.0])), Tensor(np.array([0.0])))
        bad = F.bpr_loss(Tensor(np.array([0.0])), Tensor(np.array([5.0])))
        assert good.item() < bad.item()

    def test_l2_penalty(self):
        a = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        b = Tensor(np.array([1.0]), requires_grad=True)
        penalty = F.l2_penalty([a, b])
        assert penalty.item() == pytest.approx(26.0)

    def test_l2_penalty_empty(self):
        assert F.l2_penalty([]).item() == pytest.approx(0.0)
