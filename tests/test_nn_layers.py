"""Unit tests for repro.nn layers, modules, initializers and checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import init


class TestInitializers:
    def test_truncated_normal_respects_bound(self, rng):
        samples = init.truncated_normal((1000,), std=0.01, bound=2.0, rng=rng)
        assert np.all(np.abs(samples) <= 0.02 + 1e-12)

    def test_truncated_normal_shape(self, rng):
        assert init.truncated_normal((3, 4), rng=rng).shape == (3, 4)

    def test_xavier_uniform_range(self, rng):
        samples = init.xavier_uniform((100, 100), rng=rng)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(samples) <= limit + 1e-12)

    def test_xavier_normal_std(self, rng):
        samples = init.xavier_normal((200, 200), rng=rng)
        assert abs(samples.std() - np.sqrt(2.0 / 400)) < 0.005

    def test_zeros_and_ones(self):
        assert np.all(init.zeros((2, 2)) == 0)
        assert np.all(init.ones((3,)) == 1)


class TestModuleRegistration:
    def test_parameters_are_discovered(self):
        layer = nn.Linear(4, 3)
        names = dict(layer.named_parameters())
        assert "weight" in names and "bias" in names
        assert layer.num_parameters() == 4 * 3 + 3

    def test_nested_module_parameters(self):
        mlp = nn.MLP(4, (8,), 2)
        names = [name for name, _ in mlp.named_parameters()]
        assert any("layer0" in name for name in names)
        assert len(list(mlp.parameters())) == 4  # two Linear layers × (weight, bias)

    def test_train_eval_propagates(self):
        mlp = nn.MLP(4, (8,), 2, dropout=0.5)
        mlp.eval()
        assert all(not module.training for module in mlp.modules())
        mlp.train()
        assert all(module.training for module in mlp.modules())

    def test_state_dict_roundtrip(self):
        a = nn.Linear(3, 2)
        b = nn.Linear(3, 2)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_strict_mismatch(self):
        a = nn.Linear(3, 2)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((3, 2))})  # missing bias

    def test_state_dict_shape_mismatch(self):
        a = nn.Linear(3, 2)
        state = a.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_zero_grad(self):
        layer = nn.Linear(2, 1)
        out = layer(nn.Tensor(np.ones((4, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(5, 3)
        out = layer(nn.Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self):
        layer = nn.Linear(5, 3, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 15

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_gradient_flows_to_weight(self):
        layer = nn.Linear(2, 2)
        out = layer(nn.Tensor(np.ones((3, 2))))
        out.sum().backward()
        assert layer.weight.grad.shape == (2, 2)
        assert layer.bias.grad.shape == (2,)


class TestEmbeddingLayer:
    def test_lookup(self):
        table = nn.Embedding(10, 4)
        out = table(np.array([1, 2, 3]))
        assert out.shape == (3, 4)

    def test_out_of_range_raises(self):
        table = nn.Embedding(5, 2)
        with pytest.raises(IndexError):
            table(np.array([7]))

    def test_padding_row_is_zero(self):
        table = nn.Embedding(5, 3, padding_idx=0)
        np.testing.assert_allclose(table.weight.data[0], np.zeros(3))

    def test_zero_padding_row_after_update(self):
        table = nn.Embedding(5, 3, padding_idx=0)
        table.weight.data[0] = 1.0
        table.zero_padding_row()
        np.testing.assert_allclose(table.weight.data[0], np.zeros(3))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            nn.Embedding(0, 4)


class TestLayerNormDropout:
    def test_layernorm_output_statistics(self):
        layer = nn.LayerNorm(16)
        x = nn.Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(8, 16)))
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(8), atol=1e-6)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(8), atol=1e-3)

    def test_layernorm_gradient(self):
        layer = nn.LayerNorm(4)
        x = nn.Tensor(np.random.default_rng(1).normal(size=(2, 4)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad.shape == (2, 4)
        assert np.all(np.isfinite(x.grad))

    def test_dropout_eval_passthrough(self):
        layer = nn.Dropout(0.9)
        layer.eval()
        x = nn.Tensor(np.ones(100))
        np.testing.assert_allclose(layer(x).data, np.ones(100))

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)


class TestSequentialMLP:
    def test_sequential_order(self):
        seq = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        out = seq(nn.Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert len(seq) == 3

    def test_mlp_output_dim(self):
        mlp = nn.MLP(10, (16, 8), output_dim=1)
        out = mlp(nn.Tensor(np.zeros((5, 10))))
        assert out.shape == (5, 1)

    def test_mlp_no_hidden_layers(self):
        mlp = nn.MLP(4, (), output_dim=2)
        assert mlp(nn.Tensor(np.ones((1, 4)))).shape == (1, 2)

    def test_mlp_invalid_dims(self):
        with pytest.raises(ValueError):
            nn.MLP(0, (4,), 1)

    def test_activation_modules(self):
        assert nn.ReLU()(nn.Tensor(np.array([-1.0, 1.0]))).data.tolist() == [0.0, 1.0]
        assert nn.Sigmoid()(nn.Tensor(np.array([0.0]))).data[0] == pytest.approx(0.5)
        assert nn.Tanh()(nn.Tensor(np.array([0.0]))).data[0] == pytest.approx(0.0)


class TestSerialization:
    def test_checkpoint_roundtrip(self, tmp_path):
        model = nn.MLP(4, (8,), 2)
        path = nn.save_checkpoint(model, tmp_path / "model.npz", metadata={"epochs": 3})
        clone = nn.MLP(4, (8,), 2)
        clone, metadata = nn.load_checkpoint(clone, path)
        assert metadata == {"epochs": 3}
        for (name_a, param_a), (name_b, param_b) in zip(
            model.named_parameters(), clone.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_allclose(param_a.data, param_b.data)

    def test_state_dict_file_roundtrip(self, tmp_path):
        state = {"a": np.arange(5.0), "b": np.ones((2, 2))}
        path = nn.save_state_dict(state, tmp_path / "state.npz")
        loaded = nn.load_state_dict(path)
        np.testing.assert_allclose(loaded["a"], state["a"])
        np.testing.assert_allclose(loaded["b"], state["b"])
