"""Tests for tools/repolint — the serving-stack invariant linter.

Every rule gets at least one positive fixture (the violation fires) and one
negative fixture (the idiomatic pattern passes).  The suite also locks in the
suppression-comment contract, the CLI exit codes, and — most importantly —
that the live tree under ``src/repro`` is clean, so a regression in any
serving invariant fails the tier-1 run even on machines without the CI gate.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from tools.repolint import RULES, Finding, lint_paths, lint_sources

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(source: str, select=None):
    return lint_sources({"snippet.py": textwrap.dedent(source)}, select)


def codes(findings) -> list:
    return [finding.code for finding in findings]


# --------------------------------------------------------------------- #
# RL001 — epoch-bump
# --------------------------------------------------------------------- #
class TestEpochBump:
    def test_mutator_without_bump_fires(self):
        findings = lint_snippet(
            """
            class FlatIndex:
                def __init__(self):
                    self.epoch = 0
                    self._rows = []

                def add(self, row):
                    self._rows.append(row)
            """
        )
        assert codes(findings) == ["RL001"]
        assert "FlatIndex.add" in findings[0].message

    def test_mutator_with_bump_passes(self):
        findings = lint_snippet(
            """
            class FlatIndex:
                def __init__(self):
                    self.epoch = 0
                    self._rows = []

                def add(self, row):
                    self._rows.append(row)
                    self.epoch += 1
            """
        )
        assert findings == []

    def test_branch_that_skips_the_bump_fires(self):
        findings = lint_snippet(
            """
            class FlatIndex:
                def __init__(self):
                    self.epoch = 0
                    self._map = {}

                def update(self, key, row):
                    self._map[key] = row
                    if key is None:
                        return
                    self.epoch += 1
            """
        )
        assert codes(findings) == ["RL001"]

    def test_clean_early_return_before_mutation_passes(self):
        findings = lint_snippet(
            """
            class FlatIndex:
                def __init__(self):
                    self.epoch = 0
                    self._map = {}

                def update(self, key, row):
                    if key not in self._map:
                        return
                    self._map[key] = row
                    self.epoch += 1
            """
        )
        assert findings == []

    def test_delegating_to_a_mutator_counts_as_bumping(self):
        findings = lint_snippet(
            """
            class FlatIndex:
                def __init__(self):
                    self.epoch = 0
                    self._rows = []

                def add(self, row):
                    self._rows.append(row)
                    self.epoch += 1

                def update_batch(self, rows):
                    for row in rows:
                        self.add(row)
            """
        )
        assert findings == []

    def test_non_index_class_is_out_of_scope(self):
        findings = lint_snippet(
            """
            class Formatter:
                def __init__(self):
                    self._parts = []

                def add(self, part):
                    self._parts.append(part)
            """
        )
        assert findings == []


# --------------------------------------------------------------------- #
# RL002 — shm-lifecycle
# --------------------------------------------------------------------- #
class TestShmLifecycle:
    def test_leaked_local_segment_fires(self):
        findings = lint_snippet(
            """
            from multiprocessing.shared_memory import SharedMemory

            def leak():
                segment = SharedMemory(name="x", create=True, size=64)
                segment.buf[0] = 1
            """
        )
        assert codes(findings) == ["RL002"]

    def test_try_finally_release_passes(self):
        findings = lint_snippet(
            """
            from multiprocessing.shared_memory import SharedMemory

            def tidy():
                segment = SharedMemory(name="x", create=True, size=64)
                try:
                    segment.buf[0] = 1
                finally:
                    segment.close()
                    segment.unlink()
            """
        )
        assert findings == []

    def test_with_statement_passes(self):
        findings = lint_snippet(
            """
            def tidy(SharedMatrix):
                with SharedMatrix.attach("seg") as matrix:
                    return matrix.sum()
            """
        )
        assert findings == []

    def test_ownership_transfer_via_return_passes(self):
        findings = lint_snippet(
            """
            from multiprocessing.shared_memory import SharedMemory

            def make():
                return SharedMemory(name="x", create=True, size=64)
            """
        )
        assert findings == []

    def test_stored_on_self_with_close_passes(self):
        findings = lint_snippet(
            """
            from multiprocessing.shared_memory import SharedMemory

            class Owner:
                def __init__(self):
                    self._shm = SharedMemory(name="x", create=True, size=64)

                def close(self):
                    self._shm.close()
                    self._shm.unlink()
            """
        )
        assert findings == []

    def test_stored_on_self_without_close_fires(self):
        findings = lint_snippet(
            """
            from multiprocessing.shared_memory import SharedMemory

            class Hoarder:
                def __init__(self):
                    self._shm = SharedMemory(name="x", create=True, size=64)
            """
        )
        assert codes(findings) == ["RL002"]
        assert "no close()" in findings[0].message


# --------------------------------------------------------------------- #
# RL003 — batch-of-one
# --------------------------------------------------------------------- #
class TestBatchOfOne:
    def test_pure_delegation_passes(self):
        findings = lint_snippet(
            """
            class Index:
                def search_batch(self, queries):
                    return [len(q) for q in queries]

                def search(self, query):
                    return self.search_batch([query])[0]
            """
        )
        assert findings == []

    def test_wrapper_with_its_own_loop_fires(self):
        findings = lint_snippet(
            """
            class Index:
                def search_batch(self, queries):
                    return [len(q) for q in queries]

                def search(self, query):
                    out = []
                    for row in self.search_batch([query]):
                        out.append(row)
                    return out
            """
        )
        assert codes(findings) == ["RL003"]
        assert "for block" in findings[0].message

    def test_wrapper_that_bypasses_the_canonical_fires(self):
        findings = lint_snippet(
            """
            class Drift:
                def search_batch(self, queries):
                    return list(queries)

                def search(self, query):
                    return self._lookup(query)
            """
        )
        assert codes(findings) == ["RL003"]
        assert "never calls self.search_batch" in findings[0].message

    def test_batch_derived_from_single_is_exempt(self):
        # The offline model zoo's fallback direction: an abstract score_items
        # with a default score_items_batch that loops over it.
        findings = lint_snippet(
            """
            class Recommender:
                def score_items(self, user, items):
                    raise NotImplementedError

                def score_items_batch(self, users, items):
                    return [self.score_items(user, items) for user in users]
            """
        )
        assert findings == []

    def test_single_method_without_a_pair_is_out_of_scope(self):
        findings = lint_snippet(
            """
            class Solo:
                def search(self, query):
                    return query.upper()
            """
        )
        assert findings == []

    def test_recommend_is_a_tracked_pair(self):
        findings = lint_snippet(
            """
            class Server:
                def recommend_batch(self, requests):
                    return [[] for _ in requests]

                def recommend(self, user_id, k=50):
                    try:
                        return self.recommend_batch([(user_id, k)])[0]
                    except RuntimeError:
                        return []
            """
        )
        assert codes(findings) == ["RL003"]
        assert "try block" in findings[0].message

    def test_frontend_bypassing_held_batch_path_fires(self):
        # A front-end that routes windows through server.recommend_batch must
        # not sneak a per-request helper onto server.recommend.
        findings = lint_snippet(
            """
            class Frontend:
                def _execute(self, window):
                    return self.server.recommend_batch(window)

                async def recommend(self, user_id, k):
                    return self.server.recommend(user_id, k)
            """
        )
        assert codes(findings) == ["RL003"]
        assert "single-path bypass" in findings[0].message
        assert "self.server.recommend" in findings[0].message

    def test_frontend_on_the_coalesced_path_passes(self):
        findings = lint_snippet(
            """
            class Frontend:
                def _execute(self, window):
                    return self.server.recommend_batch(window)

                async def recommend(self, user_id, k):
                    return await self._enqueue((user_id, k))
            """
        )
        assert findings == []


# --------------------------------------------------------------------- #
# RL004 — degraded-not-cached
# --------------------------------------------------------------------- #
class TestDegradedNotCached:
    def test_serve_batch_without_cacheable_fires(self):
        findings = lint_snippet(
            """
            def recommend(layer, keys, tokens, compute):
                return serve_batch(layer, keys, tokens, compute)
            """
        )
        assert codes(findings) == ["RL004"]
        assert "cacheable" in findings[0].message

    def test_serve_batch_with_cacheable_passes(self):
        findings = lint_snippet(
            """
            def recommend(layer, keys, tokens, compute, server):
                return serve_batch(
                    layer, keys, tokens, compute, cacheable=lambda: not server.degraded
                )
            """
        )
        assert findings == []

    def test_unguarded_cache_put_fires(self):
        findings = lint_snippet(
            """
            class Server:
                def remember(self, key, value):
                    self._neighbor_cache.put(key, value)
            """
        )
        assert codes(findings) == ["RL004"]

    def test_guarded_cache_put_passes(self):
        findings = lint_snippet(
            """
            class Server:
                def remember(self, key, value, cacheable):
                    if cacheable:
                        self._neighbor_cache.put(key, value)
            """
        )
        assert findings == []

    def test_guard_via_assigned_flag_passes(self):
        findings = lint_snippet(
            """
            class Server:
                def remember(self, key, value):
                    ok = not self.degraded
                    if ok:
                        self._neighbor_cache.put(key, value)
            """
        )
        assert findings == []

    def test_put_on_a_non_cache_receiver_is_out_of_scope(self):
        findings = lint_snippet(
            """
            def enqueue(queue, item):
                queue.put(item)
            """
        )
        assert findings == []


# --------------------------------------------------------------------- #
# RL005 — unbounded-telemetry
# --------------------------------------------------------------------- #
class TestUnboundedTelemetry:
    def test_list_accumulator_fires(self):
        findings = lint_snippet(
            """
            class Server:
                def __init__(self):
                    self._latency_samples = []
            """
        )
        assert codes(findings) == ["RL005"]

    def test_maxlen_deque_passes(self):
        findings = lint_snippet(
            """
            from collections import deque

            class Server:
                def __init__(self):
                    self._latency_samples = deque(maxlen=256)
            """
        )
        assert findings == []

    def test_unbounded_deque_fires(self):
        findings = lint_snippet(
            """
            from collections import deque

            class Server:
                def __init__(self):
                    self._recent_timings = deque()
            """
        )
        assert codes(findings) == ["RL005"]

    def test_non_telemetry_list_is_out_of_scope(self):
        findings = lint_snippet(
            """
            class Server:
                def __init__(self):
                    self._rows = []
            """
        )
        assert findings == []


# --------------------------------------------------------------------- #
# RL006 — worker-protocol
# --------------------------------------------------------------------- #
class TestWorkerProtocol:
    def test_unguarded_recv_fires(self):
        findings = lint_snippet(
            """
            def pump(conn):
                return conn.recv()
            """
        )
        assert codes(findings) == ["RL006"]

    def test_poll_guarded_recv_passes(self):
        findings = lint_snippet(
            """
            def pump(conn):
                if conn.poll(1.0):
                    return conn.recv()
                return None
            """
        )
        assert findings == []

    def test_swallowed_base_exception_fires(self):
        findings = lint_snippet(
            """
            def supervise(work):
                try:
                    work()
                except BaseException:
                    pass
            """
        )
        assert codes(findings) == ["RL006"]

    def test_reraised_base_exception_passes(self):
        findings = lint_snippet(
            """
            def supervise(work, log):
                try:
                    work()
                except BaseException:
                    log.error("worker died")
                    raise
            """
        )
        assert findings == []

    def test_plain_exception_handler_is_out_of_scope(self):
        findings = lint_snippet(
            """
            def supervise(work):
                try:
                    work()
                except Exception:
                    return None
            """
        )
        assert findings == []


# --------------------------------------------------------------------- #
# suppressions
# --------------------------------------------------------------------- #
SUPPRESSIBLE = """
class Server:
    def __init__(self):
        self._latency_samples = []{comment}
"""


class TestSuppression:
    def test_inline_disable(self):
        source = SUPPRESSIBLE.format(comment="  # repolint: disable=RL005")
        assert lint_snippet(source) == []

    def test_disable_on_line_above(self):
        findings = lint_snippet(
            """
            class Server:
                def __init__(self):
                    # repolint: disable=RL005 -- drained by the flush thread
                    self._latency_samples = []
            """
        )
        assert findings == []

    def test_disable_on_def_line_covers_the_body(self):
        findings = lint_snippet(
            """
            def pump(conn):  # repolint: disable=RL006
                return conn.recv()
            """
        )
        assert findings == []

    def test_disable_file(self):
        findings = lint_snippet(
            """
            # repolint: disable-file=RL005 -- telemetry fixtures
            class Server:
                def __init__(self):
                    self._latency_samples = []
            """
        )
        assert findings == []

    def test_wrong_code_does_not_suppress(self):
        source = SUPPRESSIBLE.format(comment="  # repolint: disable=RL001")
        assert codes(lint_snippet(source)) == ["RL005"]

    def test_star_suppresses_everything(self):
        source = SUPPRESSIBLE.format(comment="  # repolint: disable=*")
        assert lint_snippet(source) == []


# --------------------------------------------------------------------- #
# RL007 — atomic-snapshot-publish
# --------------------------------------------------------------------- #
class TestAtomicSnapshotPublish:
    def test_bare_write_open_in_snapshot_function_fires(self):
        findings = lint_snippet(
            """
            def save_snapshot(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
            """
        )
        assert codes(findings) == ["RL007"]

    def test_write_text_in_snapshot_module_fires(self):
        findings = lint_sources(
            {
                "core/snapshot.py": textwrap.dedent(
                    """
                    def _store(path, text):
                        path.write_text(text)
                    """
                )
            }
        )
        assert codes(findings) == ["RL007"]

    def test_atomic_write_helper_is_exempt(self):
        findings = lint_sources(
            {
                "core/snapshot.py": textwrap.dedent(
                    """
                    import os

                    def _atomic_write(path, data):
                        with open(path, "wb") as handle:
                            handle.write(data)
                        os.replace(path, path)
                    """
                )
            }
        )
        assert findings == []

    def test_read_mode_open_passes(self):
        findings = lint_snippet(
            """
            def read_snapshot(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """
        )
        assert findings == []

    def test_non_snapshot_function_out_of_scope(self):
        findings = lint_snippet(
            """
            def export_rows(path, rows):
                with open(path, "w") as handle:
                    handle.write(rows)
            """
        )
        assert findings == []

    def test_tuple_publish_fires(self):
        findings = lint_snippet(
            """
            def publish(self, shadow, journal):
                self.index, self.journal = shadow, journal
            """
        )
        assert codes(findings) == ["RL007"]

    def test_publish_of_inline_construction_fires(self):
        findings = lint_snippet(
            """
            def maintain(self):
                self.index = rebuild(self.index)
            """
        )
        assert codes(findings) == ["RL007"]

    def test_maintenance_helper_is_in_scope(self):
        findings = lint_snippet(
            """
            def poll_shadow_maintenance(self, builds):
                self.index = builds.pop()
            """
        )
        assert codes(findings) == ["RL007"]

    def test_single_name_swap_passes(self):
        findings = lint_snippet(
            """
            def publish(self, shadow):
                self.index = shadow
            """
        )
        assert findings == []

    def test_index_assignment_outside_publish_scope_passes(self):
        findings = lint_snippet(
            """
            def fit(self, vectors):
                self.index = build_index(vectors)
            """
        )
        assert findings == []


# --------------------------------------------------------------------- #
# RL008 — wal-record-codec
# --------------------------------------------------------------------- #
class TestWALRecordCodec:
    def test_raw_write_in_wal_module_fires(self):
        findings = lint_sources(
            {
                "core/wal.py": textwrap.dedent(
                    """
                    class WriteAheadLog:
                        def _write_record(self, payload):
                            self._handle.write(payload)
                    """
                )
            }
        )
        assert codes(findings) == ["RL008"]
        assert "unframed" in findings[0].message

    def test_append_without_fsync_hook_fires(self):
        findings = lint_sources(
            {
                "core/wal.py": textwrap.dedent(
                    """
                    class WriteAheadLog:
                        def append(self, payload):
                            _write_encoded(self._handle, encode_record(1, payload))
                            return 1
                    """
                )
            }
        )
        assert codes(findings) == ["RL008"]
        assert "fsync policy" in findings[0].message

    def test_codec_framed_append_with_hook_passes(self):
        findings = lint_sources(
            {
                "core/wal.py": textwrap.dedent(
                    """
                    def _write_encoded(handle, data):
                        handle.write(data)

                    class WriteAheadLog:
                        def append(self, payload):
                            _write_encoded(self._handle, encode_record(1, payload))
                            self._maybe_sync()
                            return 1
                    """
                )
            }
        )
        assert findings == []

    def test_wal_named_function_outside_module_is_in_scope(self):
        findings = lint_snippet(
            """
            def compact_wal(path, records):
                with open(path, "wb") as handle:
                    handle.write(records)
            """
        )
        assert codes(findings) == ["RL008"]

    def test_direct_encode_record_write_passes(self):
        findings = lint_snippet(
            """
            def repair_wal(handle, seq, payload):
                handle.write(encode_record(seq, payload))
            """
        )
        assert findings == []

    def test_unrelated_writes_out_of_scope_pass(self):
        findings = lint_snippet(
            """
            def export_report(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """
        )
        assert findings == []

    def test_suppression_comment_silences_deliberate_corruption(self):
        findings = lint_snippet(
            """
            def torn_wal_tail(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)  # repolint: disable=RL008 -- deliberate corruption
            """
        )
        assert findings == []


# --------------------------------------------------------------------- #
# registry, selection, findings
# --------------------------------------------------------------------- #
class TestEngine:
    def test_all_eight_rules_registered(self):
        assert sorted(RULES) == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
        ]
        for rule_obj in RULES.values():
            assert rule_obj.name and rule_obj.description

    def test_select_filters_rules(self):
        source = """
        class Server:
            def __init__(self):
                self._latency_samples = []

        def pump(conn):
            return conn.recv()
        """
        assert codes(lint_snippet(source)) == ["RL005", "RL006"]
        assert codes(lint_snippet(source, select=["RL006"])) == ["RL006"]

    def test_finding_rendering(self):
        finding = lint_snippet(SUPPRESSIBLE.format(comment=""))[0]
        assert isinstance(finding, Finding)
        rendered = finding.render()
        assert "snippet.py" in rendered and "RL005" in rendered
        payload = finding.as_dict()
        assert payload["code"] == "RL005" and payload["line"] == finding.line


# --------------------------------------------------------------------- #
# the live tree and the CLI
# --------------------------------------------------------------------- #
class TestLiveTree:
    def test_src_repro_is_clean(self):
        assert lint_paths([str(REPO_ROOT / "src" / "repro")]) == []


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.repolint", *argv],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


class TestCli:
    def test_clean_tree_exits_zero(self):
        proc = run_cli("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_violations_exit_one_with_json(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "class Server:\n"
            "    def __init__(self):\n"
            "        self._latency_samples = []\n",
            encoding="utf-8",
        )
        proc = run_cli(str(bad), "--format=json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert [finding["code"] for finding in payload] == ["RL005"]

    def test_missing_path_exits_two(self, tmp_path):
        proc = run_cli(str(tmp_path / "nope"))
        assert proc.returncode == 2

    def test_syntax_error_exits_two(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def (:\n", encoding="utf-8")
        proc = run_cli(str(broken))
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007"):
            assert code in proc.stdout


class TestStylecheck:
    def test_repo_is_stylecheck_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.stylecheck", "src/repro", "tests", "benchmarks", "tools"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout
