"""Shared fixtures for the test suite.

The expensive pieces — synthetic datasets and trained UI models — are session
scoped so the several hundred tests stay fast: the tiny dataset takes well
under a second to generate and the lightly-trained FISM/SASRec models a
couple of seconds each.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import SCCF, SCCFConfig
from repro.data import InteractionLog, RecDataset, load_preset
from repro.models import FISM, SASRec

# Make the repo-root ``tools`` package (repolint, stylecheck) importable no
# matter how pytest was launched; the runtime package comes from PYTHONPATH=src.
_REPO_ROOT = str(Path(__file__).resolve().parents[1])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)


@pytest.fixture(scope="session")
def tiny_dataset() -> RecDataset:
    """The smallest synthetic preset, shared across the suite."""

    return load_preset("tiny")


@pytest.fixture(scope="session")
def small_dataset() -> RecDataset:
    """A slightly larger dataset for integration-level tests."""

    return load_preset("tiny", seed=21, num_users=100, num_items=120, avg_interactions=15.0, name="tiny-big")


@pytest.fixture(scope="session")
def trained_fism(tiny_dataset: RecDataset) -> FISM:
    model = FISM(embedding_dim=16, num_epochs=3, seed=3)
    model.fit(tiny_dataset)
    return model


@pytest.fixture(scope="session")
def trained_sasrec(tiny_dataset: RecDataset) -> SASRec:
    model = SASRec(embedding_dim=16, max_length=20, num_epochs=2, seed=3)
    model.fit(tiny_dataset)
    return model


@pytest.fixture(scope="session")
def fitted_sccf(tiny_dataset: RecDataset, trained_fism: FISM) -> SCCF:
    sccf = SCCF(
        trained_fism,
        SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=3, seed=3),
    )
    sccf.fit(tiny_dataset, fit_ui_model=False)
    return sccf


@pytest.fixture()
def simple_log() -> InteractionLog:
    """A tiny hand-written interaction log with known structure."""

    #        user, item, time
    events = [
        (0, 0, 1.0),
        (0, 1, 2.0),
        (0, 2, 3.0),
        (0, 3, 4.0),
        (1, 1, 1.5),
        (1, 2, 2.5),
        (1, 3, 3.5),
        (1, 4, 4.5),
        (2, 0, 1.2),
        (2, 4, 2.2),
        (2, 5, 3.2),
        (2, 1, 4.2),
    ]
    users = [e[0] for e in events]
    items = [e[1] for e in events]
    times = [e[2] for e in events]
    return InteractionLog(users, items, times)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
