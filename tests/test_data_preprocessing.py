"""Unit tests for k-core filtering, re-indexing and the leave-one-out split."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InteractionLog, build_dataset, k_core_filter, leave_one_out_split, reindex_ids


def make_log(pairs, categories=None):
    users = [p[0] for p in pairs]
    items = [p[1] for p in pairs]
    return InteractionLog(users, items, list(range(len(pairs))), categories)


class TestKCoreFilter:
    def test_removes_rare_users_and_items(self):
        # user 0 has 3 interactions; user 1 has 1; item 9 appears once.
        log = make_log([(0, 1), (0, 2), (0, 1), (1, 9)])
        filtered = k_core_filter(log, min_user_interactions=2, min_item_interactions=2)
        assert set(filtered.users.tolist()) == {0}
        assert 9 not in filtered.items.tolist()

    def test_fixed_point_reached(self):
        # Chain where removing one item cascades.
        log = make_log([(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)])
        filtered = k_core_filter(log, 2, 2)
        # Every remaining user and item satisfies the constraint.
        for count in filtered.interactions_per_user().values():
            assert count >= 2
        for count in filtered.interactions_per_item().values():
            assert count >= 2

    def test_empty_result_allowed(self):
        log = make_log([(0, 0), (1, 1)])
        filtered = k_core_filter(log, 5, 5)
        assert len(filtered) == 0

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            k_core_filter(make_log([(0, 0)]), 0, 1)

    @given(
        st.lists(st.tuples(st.integers(0, 6), st.integers(0, 10)), min_size=1, max_size=60),
        st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_all_counts_satisfy_threshold(self, pairs, k):
        filtered = k_core_filter(make_log(pairs), k, k)
        for count in filtered.interactions_per_user().values():
            assert count >= k
        for count in filtered.interactions_per_item().values():
            assert count >= k


class TestReindex:
    def test_contiguous_ids(self):
        log = make_log([(10, 100), (10, 200), (30, 100)])
        reindexed, user_map, item_map, _ = reindex_ids(log)
        assert set(reindexed.users.tolist()) == {0, 1}
        assert set(reindexed.items.tolist()) == {0, 1}
        assert user_map == {10: 0, 30: 1}
        assert item_map == {100: 0, 200: 1}

    def test_category_array_built(self):
        log = make_log([(1, 5), (1, 7)])
        _, _, item_map, categories = reindex_ids(log, item_categories={5: 3, 7: 9})
        assert categories is not None
        assert categories[item_map[5]] == 3
        assert categories[item_map[7]] == 9

    def test_preserves_interaction_count(self):
        log = make_log([(4, 4), (4, 5), (9, 4)])
        reindexed, _, _, _ = reindex_ids(log)
        assert len(reindexed) == 3


class TestLeaveOneOut:
    def test_split_structure(self):
        log = make_log([(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (1, 6), (1, 7)])
        train, validation, test = leave_one_out_split(log)
        assert validation[0] == 3 and test[0] == 4
        assert validation[1] == 6 and test[1] == 7
        # user 0 keeps items {1, 2}, user 1 keeps item {5}
        assert len(train) == 3

    def test_short_sequences_stay_in_training(self):
        log = make_log([(0, 1), (0, 2), (1, 5)])
        train, validation, test = leave_one_out_split(log, min_sequence_length=3)
        assert 1 not in validation and 1 not in test
        assert 5 in train.items.tolist()

    def test_chronological_order_respected(self):
        # Timestamps deliberately out of insertion order.
        log = InteractionLog([0, 0, 0], [7, 8, 9], [3.0, 1.0, 2.0])
        _, validation, test = leave_one_out_split(log)
        assert test[0] == 7      # latest timestamp
        assert validation[0] == 9

    def test_categories_preserved_in_training(self):
        log = make_log([(0, 1), (0, 2), (0, 3), (0, 4)], categories=[5, 6, 7, 8])
        train, _, _ = leave_one_out_split(log)
        assert train.categories is not None

    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 20)), min_size=3, max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_property_no_interactions_lost(self, pairs):
        log = make_log(pairs)
        train, validation, test = leave_one_out_split(log)
        assert len(train) + len(validation) + len(test) == len(pairs)


class TestBuildDataset:
    def test_end_to_end(self):
        pairs = []
        for user in range(6):
            for item in range(user, user + 6):
                pairs.append((user * 10, item * 3))
        dataset = build_dataset("unit", make_log(pairs), min_user_interactions=3, min_item_interactions=1)
        assert dataset.num_users > 0 and dataset.num_items > 0
        assert dataset.name == "unit"
        # ids are contiguous
        assert dataset.train.users.max() < dataset.num_users
        assert dataset.train.items.max() < dataset.num_items
        assert len(dataset.test_items) > 0

    def test_skip_k_core(self):
        pairs = [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        dataset = build_dataset("unit", make_log(pairs), apply_k_core=False)
        assert dataset.num_users == 2
