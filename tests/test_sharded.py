"""Unit and integration tests for scatter-gather sharded serving.

`tests/test_properties_ann.py` pins the randomized sharded/unsharded parity;
this file covers the deterministic surface: routing, growth, maintenance
fan-out, the `UserNeighborhoodComponent` / `SCCFConfig` knobs, and the
`RealTimeServer.maintain()` hook.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import (
    DEFAULT_RETRAIN_THRESHOLD,
    BruteForceIndex,
    IVFIndex,
    NeighborIndex,
    ShardedIndex,
)
from repro.core import SCCF, RealTimeServer, SCCFConfig, UserNeighborhoodComponent


class TestShardedIndex:
    def test_protocol_conformance(self):
        assert isinstance(ShardedIndex(), NeighborIndex)

    def test_round_robin_partitioning(self, rng):
        index = ShardedIndex(num_shards=3).build(rng.normal(size=(10, 4)))
        assert index.shard_of(0) == (0, 0)
        assert index.shard_of(1) == (1, 0)
        assert index.shard_of(5) == (2, 1)
        assert index.shard_of(9) == (0, 3)
        sizes = [shard.size for shard in index.shards]
        assert sizes == [4, 3, 3]  # balanced to within one row

    def test_self_is_top_neighbor(self, rng):
        vectors = rng.normal(size=(30, 8))
        index = ShardedIndex(num_shards=4).build(vectors)
        ids, sims = index.search(vectors[7], k=3)
        assert ids[0] == 7
        assert sims[0] == pytest.approx(1.0)

    def test_exclusions_pass_through(self, rng):
        vectors = rng.normal(size=(30, 8))
        index = ShardedIndex(num_shards=3).build(vectors)
        ids, _ = index.search(vectors[7], k=5, exclude=np.array([7]))
        assert 7 not in ids

    def test_update_routes_to_owning_shard(self, rng):
        vectors = rng.normal(size=(12, 4))
        index = ShardedIndex(num_shards=3).build(vectors)
        fresh = rng.normal(size=4)
        index.update(7, fresh)
        shard, local = index.shard_of(7)
        np.testing.assert_allclose(
            index.shards[shard]._vectors[local], fresh.astype(np.float32), rtol=1e-6
        )
        ids, _ = index.search(fresh, k=1)
        assert ids[0] == 7

    def test_add_continues_round_robin(self, rng):
        index = ShardedIndex(num_shards=3).build(rng.normal(size=(7, 4)))
        index.add(rng.normal(size=(5, 4)))
        assert index.size == 12
        assert [shard.size for shard in index.shards] == [4, 4, 4]
        ids, _ = index.search(index.shards[0]._vectors[3].astype(np.float64), k=1)
        assert ids[0] == 9  # global position 9 lives at (shard 0, local 3)

    def test_add_into_empty_shard_builds_it(self, rng):
        # 2 rows over 4 shards leaves shards 2 and 3 empty at build time.
        index = ShardedIndex(num_shards=4).build(rng.normal(size=(2, 4)))
        assert [shard.size for shard in index.shards] == [1, 1, 0, 0]
        index.add(rng.normal(size=(4, 4)))
        assert [shard.size for shard in index.shards] == [2, 2, 1, 1]
        flat_ids, _ = index.search(rng.normal(size=4), k=6)
        assert sorted(flat_ids.tolist()) == list(range(6))

    def test_custom_ids(self, rng):
        vectors = rng.normal(size=(6, 3))
        ids = np.array([10, 20, 30, 40, 50, 60])
        index = ShardedIndex(num_shards=2).build(vectors, ids=ids)
        got, _ = index.search(vectors[2], k=1)
        assert got[0] == 30

    def test_duplicate_ids_rejected_globally(self, rng):
        index = ShardedIndex(num_shards=2).build(rng.normal(size=(6, 3)))
        with pytest.raises(ValueError, match="collide"):
            index.add(rng.normal(size=(1, 3)), ids=np.array([4]))
        with pytest.raises(ValueError, match="unique"):
            index.add(rng.normal(size=(2, 3)), ids=np.array([7, 7]))
        with pytest.raises(ValueError, match="unique"):
            ShardedIndex(num_shards=2).build(rng.normal(size=(2, 3)), ids=np.array([1, 1]))

    def test_errors(self, rng):
        with pytest.raises(ValueError):
            ShardedIndex(num_shards=0)
        with pytest.raises(ValueError):
            ShardedIndex(num_threads=0)
        index = ShardedIndex(num_shards=2)
        with pytest.raises(RuntimeError):
            index.search(np.ones(3), k=1)
        with pytest.raises(RuntimeError):
            index.update(0, np.ones(3))
        with pytest.raises(RuntimeError):
            index.add(np.ones((1, 3)))
        with pytest.raises(ValueError, match="zero vectors"):
            index.build(np.empty((0, 3)))
        built = ShardedIndex(num_shards=2).build(rng.normal(size=(6, 3)))
        with pytest.raises(ValueError):
            built.search(np.ones(3), k=0)
        with pytest.raises(ValueError):
            built.update(9, np.ones(3))
        with pytest.raises(ValueError):
            built.update_batch([0], np.ones((1, 7)))

    def test_ivf_shards_and_maintenance_fanout(self, rng):
        vectors = rng.normal(size=(40, 6))
        index = ShardedIndex(
            num_shards=2,
            # n_probe=4 of 4 cells: each shard scans all its cells, so the
            # scatter-gather result must match an exact scan even after retrain
            shard_factory=lambda: IVFIndex(num_cells=4, n_probe=4, rng=np.random.default_rng(0)),
        ).build(vectors)
        assert all(isinstance(shard, IVFIndex) for shard in index.shards)
        assert index.imbalance() >= 1.0
        index.retrain(num_iterations=5)
        exact = BruteForceIndex().build(vectors)
        query = rng.normal(size=6)
        approx_ids, _ = index.search(query, k=8)
        exact_ids, _ = exact.search(query, k=8)
        np.testing.assert_array_equal(np.sort(approx_ids), np.sort(exact_ids))

    def test_shard_retrain_threshold_surfaces_most_conservative(self, rng):
        index = ShardedIndex(num_shards=2).build(rng.normal(size=(8, 4)))
        assert index.retrain_threshold is None  # brute-force shards carry none
        thresholds = iter([4.0, 1.5])
        ivf_backed = ShardedIndex(
            num_shards=2,
            shard_factory=lambda: IVFIndex(
                num_cells=2, n_probe=2, retrain_threshold=next(thresholds)
            ),
        ).build(rng.normal(size=(8, 4)))
        assert ivf_backed.retrain_threshold == 1.5

    def test_brute_force_shards_report_balanced(self, rng):
        index = ShardedIndex(num_shards=2).build(rng.normal(size=(10, 4)))
        assert index.imbalance() == 1.0
        index.retrain()  # no-op, must not raise

    def test_close_is_idempotent(self, rng):
        index = ShardedIndex(num_shards=2, num_threads=2).build(rng.normal(size=(8, 4)))
        index.search_batch(rng.normal(size=(3, 4)), k=2)
        index.close()
        index.close()
        # searches still work after close (executor is recreated lazily)
        index.search_batch(rng.normal(size=(3, 4)), k=2)
        index.close()


class TestNeighborhoodSharding:
    def test_num_shards_knob_builds_sharded_index(self):
        component = UserNeighborhoodComponent(num_neighbors=5, num_shards=3)
        assert isinstance(component.index, ShardedIndex)
        assert component.index.num_shards == 3

    def test_index_factory_without_shards(self):
        component = UserNeighborhoodComponent(
            num_neighbors=5, index_factory=lambda: IVFIndex(num_cells=2, n_probe=2)
        )
        assert isinstance(component.index, IVFIndex)

    def test_index_factory_supplies_shard_backends(self):
        component = UserNeighborhoodComponent(
            num_neighbors=5,
            num_shards=2,
            index_factory=lambda: IVFIndex(num_cells=2, n_probe=2),
        )
        assert isinstance(component.index, ShardedIndex)

    def test_explicit_index_takes_precedence(self):
        explicit = BruteForceIndex()
        component = UserNeighborhoodComponent(num_neighbors=5, index=explicit, num_shards=4)
        assert component.index is explicit

    def test_invalid_num_shards(self):
        with pytest.raises(ValueError):
            UserNeighborhoodComponent(num_shards=0)
        with pytest.raises(ValueError):
            SCCFConfig(num_shards=0)

    def test_sharded_scoring_matches_unsharded(self, tiny_dataset, trained_fism):
        flat = UserNeighborhoodComponent(num_neighbors=8).fit(trained_fism, tiny_dataset)
        sharded = UserNeighborhoodComponent(num_neighbors=8, num_shards=2).fit(
            trained_fism, tiny_dataset
        )
        users = list(range(0, tiny_dataset.num_users, 7))
        np.testing.assert_allclose(
            flat.score_for_users(users), sharded.score_for_users(users), atol=1e-9
        )

    def test_sccf_config_num_shards_reaches_index(self, trained_fism):
        sccf = SCCF(trained_fism, SCCFConfig(num_neighbors=5, merger_epochs=1, num_shards=2))
        assert isinstance(sccf.neighborhood.index, ShardedIndex)

    def test_sccf_rejects_explicit_index_plus_num_shards(self, trained_fism):
        """An explicit index would silently override the sharding knob."""

        with pytest.raises(ValueError, match="not both"):
            SCCF(
                trained_fism,
                SCCFConfig(num_neighbors=5, merger_epochs=1, num_shards=2),
                neighbor_index=BruteForceIndex(),
            )


class TestRealTimeMaintain:
    def _server(self, dataset, fism, index) -> RealTimeServer:
        sccf = SCCF(
            fism,
            SCCFConfig(num_neighbors=8, candidate_list_size=20, merger_epochs=1, seed=3),
            neighbor_index=index,
        )
        sccf.fit(dataset, fit_ui_model=False)
        return RealTimeServer(sccf, dataset)

    def test_unsupported_index_is_noop(self, tiny_dataset, trained_fism):
        server = self._server(tiny_dataset, trained_fism, BruteForceIndex())
        report = server.maintain()
        assert report.supported is False
        assert report.retrained is False
        assert report.imbalance_before is None

    def test_balanced_index_not_retrained(self, tiny_dataset, trained_fism):
        server = self._server(
            tiny_dataset, trained_fism, IVFIndex(num_cells=4, n_probe=4, rng=np.random.default_rng(0))
        )
        report = server.maintain(imbalance_threshold=50.0)
        assert report.supported and not report.retrained
        assert report.imbalance_after == report.imbalance_before

    def test_skewed_index_retrained_below_threshold(self, tiny_dataset, trained_fism):
        index = IVFIndex(num_cells=8, n_probe=8, rng=np.random.default_rng(0))
        server = self._server(tiny_dataset, trained_fism, index)
        # skew the pool the way a drifted stream would
        rng = np.random.default_rng(9)
        drift = rng.normal(size=(300, trained_fism.embedding_dim))
        drift[:, 0] += 4.0
        index.add(drift)
        assert index.imbalance() > DEFAULT_RETRAIN_THRESHOLD
        report = server.maintain()
        assert report.supported and report.retrained
        assert report.threshold == DEFAULT_RETRAIN_THRESHOLD
        assert report.imbalance_before > DEFAULT_RETRAIN_THRESHOLD
        assert report.imbalance_after < DEFAULT_RETRAIN_THRESHOLD
        assert report.duration_ms >= 0.0

    def test_index_own_threshold_wins(self, tiny_dataset, trained_fism):
        index = IVFIndex(
            num_cells=4, n_probe=4, rng=np.random.default_rng(0), retrain_threshold=100.0
        )
        server = self._server(tiny_dataset, trained_fism, index)
        report = server.maintain()
        assert report.threshold == 100.0
        assert not report.retrained
