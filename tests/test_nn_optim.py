"""Unit tests for the optimizers and learning-rate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, ConstantSchedule, LinearDecay, StepDecay


def quadratic_loss(param: Parameter) -> nn.Tensor:
    """Simple convex objective: ||x - 3||²."""

    diff = param - nn.Tensor(np.full(param.shape, 3.0))
    return (diff * diff).sum()


class TestSchedules:
    def test_constant(self):
        assert ConstantSchedule().multiplier(100) == 1.0

    def test_linear_decay_endpoints(self):
        schedule = LinearDecay(total_steps=10, final_fraction=0.1)
        assert schedule.multiplier(0) == pytest.approx(1.0)
        assert schedule.multiplier(10) == pytest.approx(0.1)
        assert schedule.multiplier(100) == pytest.approx(0.1)  # clamped past the end

    def test_linear_decay_midpoint(self):
        schedule = LinearDecay(total_steps=10, final_fraction=0.0)
        assert schedule.multiplier(5) == pytest.approx(0.5)

    def test_linear_decay_validation(self):
        with pytest.raises(ValueError):
            LinearDecay(total_steps=0)
        with pytest.raises(ValueError):
            LinearDecay(total_steps=5, final_fraction=2.0)

    def test_step_decay(self):
        schedule = StepDecay(step_size=10, gamma=0.5)
        assert schedule.multiplier(9) == pytest.approx(1.0)
        assert schedule.multiplier(10) == pytest.approx(0.5)
        assert schedule.multiplier(25) == pytest.approx(0.25)


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            loss = quadratic_loss(param)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.zeros(2))
        momentum = Parameter(np.zeros(2))
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            for param, optimizer in ((plain, opt_plain), (momentum, opt_momentum)):
                loss = quadratic_loss(param)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        assert np.abs(momentum.data - 3.0).sum() < np.abs(plain.data - 3.0).sum()

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.ones(2))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()  # no backward yet -> no change
        np.testing.assert_allclose(param.data, np.ones(2))

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.full(3, 10.0))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        loss = (param * 0.0).sum()  # zero data gradient
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        assert np.all(param.data < 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        optimizer = Adam([param], lr=0.1)
        for _ in range(200):
            loss = quadratic_loss(param)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, np.full(4, 3.0), atol=1e-2)

    def test_bias_correction_first_step_magnitude(self):
        # With bias correction the very first Adam step has magnitude ~lr.
        param = Parameter(np.zeros(1))
        optimizer = Adam([param], lr=0.05)
        loss = quadratic_loss(param)
        loss.backward()
        optimizer.step()
        assert abs(abs(param.data[0]) - 0.05) < 0.01

    def test_schedule_reduces_effective_lr(self):
        param = Parameter(np.zeros(1))
        optimizer = Adam([param], lr=0.1, schedule=LinearDecay(total_steps=10, final_fraction=0.0))
        assert optimizer.current_lr == pytest.approx(0.1)
        for _ in range(10):
            loss = quadratic_loss(param)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert optimizer.current_lr == pytest.approx(0.0)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], beta1=1.5)

    def test_state_is_per_parameter(self):
        a = Parameter(np.zeros(2))
        b = Parameter(np.zeros(3))
        optimizer = Adam([a, b], lr=0.01)
        loss = quadratic_loss(a) + quadratic_loss(b)
        loss.backward()
        optimizer.step()
        assert len(optimizer._first_moment) == 2
