"""End-to-end integration tests across the whole pipeline.

These mirror the paper's workflow on the tiny preset: preprocess → train a UI
model → wrap it in SCCF → evaluate under leave-one-out → serve in real time,
plus the online A/B loop.  They are intentionally cheap (a few seconds) but
exercise every module boundary together.
"""

from __future__ import annotations

import numpy as np

from repro import __version__
from repro.core import SCCF, RealTimeServer, SCCFConfig
from repro.data import load_preset
from repro.eval import Evaluator
from repro.models import FISM, Popularity, SASRec, YouTubeDNN
from repro.simulation import ABTestConfig, ABTestHarness, ClickstreamConfig


class TestPublicAPI:
    def test_version_exposed(self):
        assert __version__

    def test_top_level_imports(self):
        import repro

        for name in ("SCCF", "SCCFConfig", "RealTimeServer", "Evaluator", "FISM", "SASRec", "load_preset"):
            assert hasattr(repro, name)


class TestOfflinePipeline:
    def test_fism_sccf_pipeline(self, tiny_dataset):
        fism = FISM(embedding_dim=16, num_epochs=3, seed=11)
        sccf = SCCF(fism, SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=5, seed=11))
        sccf.fit(tiny_dataset)
        evaluator = Evaluator(cutoffs=(10, 20))
        results = {}
        for mode in ("ui", "uu", "sccf"):
            sccf.set_mode(mode)
            results[mode] = evaluator.evaluate(sccf, tiny_dataset).metrics
        # All three variants produce valid metrics in [0, 1].
        for metrics in results.values():
            for value in metrics.values():
                assert 0.0 <= value <= 1.0
        # The fused framework should not collapse: it stays within a sane band
        # of its own UI component even on this tiny dataset.
        assert results["sccf"]["HR@20"] >= 0.3 * results["ui"]["HR@20"]

    def test_sasrec_sccf_pipeline(self, tiny_dataset):
        sasrec = SASRec(embedding_dim=16, max_length=20, num_epochs=2, seed=12)
        sccf = SCCF(sasrec, SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=5, seed=12))
        sccf.fit(tiny_dataset)
        sccf.set_mode("sccf")
        result = Evaluator(cutoffs=(20,)).evaluate(sccf, tiny_dataset)
        assert result.num_users == len(tiny_dataset.test_items)

    def test_every_baseline_runs_on_same_dataset(self, tiny_dataset):
        evaluator = Evaluator(cutoffs=(20,), max_users=30)
        from repro.models import BPRMF, ItemKNN, UserKNN

        models = {
            "Pop": Popularity(),
            "ItemKNN": ItemKNN(),
            "UserKNN": UserKNN(num_neighbors=10),
            "BPR-MF": BPRMF(embedding_dim=8, num_epochs=2, seed=0),
        }
        for model in models.values():
            model.fit(tiny_dataset)
        results = evaluator.evaluate_many(models, tiny_dataset)
        assert len(results) == 4
        assert all(0.0 <= r.metrics["HR@20"] <= 1.0 for r in results)


class TestRealTimePipeline:
    def test_streaming_updates_end_to_end(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        users = tiny_dataset.evaluation_users()[:5]
        rng = np.random.default_rng(0)
        for user in users:
            item = int(rng.integers(0, tiny_dataset.num_items))
            breakdown = server.observe(user, item)
            assert breakdown.total_ms < 1000.0  # sanity: sub-second per event
            recommendations = server.recommend(user, k=10)
            assert len(recommendations) <= 10
        average = server.average_latency()
        assert average is not None and average.total_ms > 0.0

    def test_sccf_faster_than_userknn_recompute(self, fitted_sccf, tiny_dataset):
        """The Table III claim at unit-test scale: per-event cost of the SCCF
        path is not dramatically slower than a single UserKNN recompute even
        on a tiny catalog (on realistic catalogs UserKNN scales linearly in
        #items while SCCF does not)."""

        import time

        from repro.models import UserKNN

        server = RealTimeServer(fitted_sccf, tiny_dataset)
        userknn = UserKNN(num_neighbors=10).fit(tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]

        start = time.perf_counter()
        userknn.realtime_update_and_recommend(user, 0, k=20)
        knn_ms = (time.perf_counter() - start) * 1000

        breakdown = server.observe(user, 0)
        assert breakdown.total_ms < max(10 * knn_ms, 100.0)


class TestOnlineSimulation:
    def test_ab_test_end_to_end(self):
        harness = ABTestHarness(
            clickstream_config=ClickstreamConfig(
                num_users=60, num_items=120, num_categories=8, num_communities=5, num_days=9, seed=7
            ),
            ab_config=ABTestConfig(training_days=6, test_days=2, candidate_set_size=20, examined_items=8, seed=7),
        )
        dataset, simulator = harness.build_training_dataset()
        baseline = YouTubeDNN(embedding_dim=16, num_epochs=2, seed=7).fit(dataset)
        treatment_ui = YouTubeDNN(embedding_dim=16, num_epochs=2, seed=7).fit(dataset)
        treatment = SCCF(
            treatment_ui,
            SCCFConfig(num_neighbors=10, candidate_list_size=25, merger_epochs=3, seed=7),
        ).fit(dataset, fit_ui_model=False)

        result = harness.run(baseline, treatment, dataset, simulator)
        assert result.baseline.clicks > 0
        assert result.treatment.clicks > 0
        assert np.isfinite(result.click_lift)
        assert np.isfinite(result.trade_lift)
