"""Tests for the clickstream simulator and the A/B test harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import Popularity
from repro.simulation import (
    ABTestConfig,
    ABTestHarness,
    ABTestResult,
    BucketOutcome,
    ClickstreamConfig,
    ClickstreamSimulator,
    simulate_clickstream,
)


SMALL_STREAM = ClickstreamConfig(
    num_users=40,
    num_items=80,
    num_categories=10,
    num_communities=4,
    num_days=6,
    min_clicks_per_day=1,
    max_clicks_per_day=3,
    seed=3,
)


class TestClickstreamConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClickstreamConfig(num_days=0)
        with pytest.raises(ValueError):
            ClickstreamConfig(min_clicks_per_day=0)
        with pytest.raises(ValueError):
            ClickstreamConfig(min_clicks_per_day=5, max_clicks_per_day=2)
        with pytest.raises(ValueError):
            ClickstreamConfig(category_jump_probability=1.5)


class TestClickstreamSimulator:
    def test_simulate_day_produces_bounded_clicks(self):
        simulator = ClickstreamSimulator(SMALL_STREAM)
        events = simulator.simulate_day()
        per_user = {}
        for event in events:
            per_user[event.user_id] = per_user.get(event.user_id, 0) + 1
        assert all(1 <= count <= 3 for count in per_user.values())
        assert len(per_user) == SMALL_STREAM.num_users

    def test_clock_advances(self):
        simulator = ClickstreamSimulator(SMALL_STREAM)
        assert simulator.current_day == 0
        simulator.simulate_day()
        assert simulator.current_day == 1

    def test_timestamps_encode_days(self):
        log = simulate_clickstream(SMALL_STREAM)
        days = np.floor(log.timestamps).astype(int)
        assert days.min() == 0
        assert days.max() == SMALL_STREAM.num_days - 1

    def test_categories_consistent_with_world(self):
        simulator = ClickstreamSimulator(SMALL_STREAM)
        log = simulator.simulate()
        for item, category in zip(log.items, log.categories):
            assert category == simulator.world.item_categories[item]

    def test_affinity_bonus_for_community_items(self):
        simulator = ClickstreamSimulator(SMALL_STREAM)
        user = 0
        bundle = simulator.world.community_item_sets[int(simulator.world.user_communities[user])]
        inside = int(bundle[0])
        outside = next(i for i in range(SMALL_STREAM.num_items) if i not in set(bundle.tolist()))
        affinities = simulator.affinity(user, [inside, outside])
        # Holding the latent part aside, the bundle bonus is +1.5; with random
        # latents the bundle item is usually but not always higher, so test
        # the bonus directly by comparing to the raw latent scores.
        raw = simulator.world.item_vectors[[inside, outside]] @ simulator._preferences[user]
        assert affinities[0] - raw[0] == pytest.approx(simulator.community_affinity_bonus)
        assert affinities[1] - raw[1] == pytest.approx(0.0)

    def test_reproducible_with_same_seed(self):
        a = simulate_clickstream(SMALL_STREAM)
        b = simulate_clickstream(SMALL_STREAM)
        np.testing.assert_array_equal(a.items, b.items)


class TestABTestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ABTestConfig(training_days=0)
        with pytest.raises(ValueError):
            ABTestConfig(candidate_set_size=0)
        with pytest.raises(ValueError):
            ABTestConfig(trade_probability=2.0)


class TestABTestHarness:
    @pytest.fixture(scope="class")
    def harness_setup(self):
        harness = ABTestHarness(
            clickstream_config=ClickstreamConfig(
                num_users=50,
                num_items=100,
                num_categories=8,
                num_communities=5,
                num_days=8,
                seed=5,
            ),
            ab_config=ABTestConfig(
                training_days=5, test_days=2, candidate_set_size=20, examined_items=8, seed=5
            ),
        )
        dataset, simulator = harness.build_training_dataset()
        return harness, dataset, simulator

    def test_training_dataset_shape(self, harness_setup):
        _, dataset, simulator = harness_setup
        assert dataset.num_users > 0
        assert dataset.num_items <= simulator.config.num_items
        assert len(dataset.train) > 0

    def test_run_produces_engagement(self, harness_setup):
        harness, dataset, simulator = harness_setup
        baseline = Popularity().fit(dataset)
        treatment = Popularity().fit(dataset)
        result = harness.run(baseline, treatment, dataset, simulator)
        assert isinstance(result, ABTestResult)
        total_users = result.baseline.num_users + result.treatment.num_users
        assert total_users == dataset.num_users
        assert result.baseline.clicks >= 0 and result.treatment.clicks >= 0
        assert len(result.baseline.daily_clicks) == 2

    def test_identical_models_give_small_lift(self, harness_setup):
        harness, dataset, simulator = harness_setup
        baseline = Popularity().fit(dataset)
        treatment = Popularity().fit(dataset)
        result = harness.run(baseline, treatment, dataset, simulator)
        # Same policy in both buckets: lift should be small (bucket noise only).
        assert abs(result.click_lift) < 0.5

    def test_result_rows_format(self):
        result = ABTestResult(
            baseline=BucketOutcome(name="baseline", num_users=10, clicks=100, trades=20),
            treatment=BucketOutcome(name="sccf", num_users=10, clicks=110, trades=23),
        )
        assert result.click_lift == pytest.approx(0.10)
        assert result.trade_lift == pytest.approx(0.15)
        rows = result.as_rows()
        assert rows[0]["Metric"] == "#Clicks"
        assert rows[1]["Lift Rate"].endswith("%")

    def test_zero_baseline_lift_is_zero(self):
        result = ABTestResult(
            baseline=BucketOutcome(name="baseline", num_users=5, clicks=0, trades=0),
            treatment=BucketOutcome(name="sccf", num_users=5, clicks=10, trades=1),
        )
        assert result.click_lift == 0.0
        assert result.trade_lift == 0.0

    def test_per_user_rates(self):
        outcome = BucketOutcome(name="b", num_users=4, clicks=8, trades=2)
        assert outcome.clicks_per_user == pytest.approx(2.0)
        assert outcome.trades_per_user == pytest.approx(0.5)
