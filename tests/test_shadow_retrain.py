"""Blue/green shadow retrains: bit-identity, failure containment, background mode.

The tentpole contract: ``maintain()`` re-clusters a *clone* of the live index
while the old index keeps serving, journals mutations that land meanwhile,
replays them onto the shadow and publishes through one atomic reference swap.
The published index must be **bit-identical** to what an in-place retrain
would have produced, and a retrain failure anywhere in the shadow path must
leave the live index serving bit-identically (the regression this pins: the
old in-place path corrupted serving state when kmeans died mid-pass).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.ann.ivf as ivf_module
from repro.ann import IVFIndex
from repro.core import SCCF, RealTimeServer, SCCFConfig
from repro.core.realtime import MaintenanceScheduler
from repro.testing.faults import InjectedFault

#: imbalance is always >= 1.0, so this threshold forces a retrain every pass
FORCE_RETRAIN = 0.5


def _ivf_server(tiny_dataset, trained_fism, **server_kwargs):
    sccf = SCCF(
        trained_fism,
        SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2, seed=3),
        neighbor_index=IVFIndex(num_cells=4, n_probe=2, rng=np.random.default_rng(7)),
    ).fit(tiny_dataset, fit_ui_model=False)
    return RealTimeServer(sccf, tiny_dataset, **server_kwargs)


def _warm(server, tiny_dataset, items=(1,)):
    for user in tiny_dataset.evaluation_users()[:5]:
        for item in items:
            server.observe(user, item)


def _assert_recommend_parity(a, b, tiny_dataset, k=10):
    for user in tiny_dataset.evaluation_users()[:8]:
        assert a.recommend(user, k=k) == b.recommend(user, k=k), f"user {user}"


class TestShadowParity:
    def test_shadow_publish_bit_identical_to_in_place(self, tiny_dataset, trained_fism):
        shadowed = _ivf_server(tiny_dataset, trained_fism)
        in_place = _ivf_server(tiny_dataset, trained_fism)
        _warm(shadowed, tiny_dataset)
        _warm(in_place, tiny_dataset)
        report = shadowed.maintain(imbalance_threshold=FORCE_RETRAIN, shadow=True)
        legacy = in_place.maintain(imbalance_threshold=FORCE_RETRAIN, shadow=False)
        assert report.retrained and report.shadow and report.error is None
        assert legacy.retrained and not legacy.shadow
        assert report.imbalance_after == pytest.approx(legacy.imbalance_after)
        _assert_recommend_parity(shadowed, in_place, tiny_dataset)

    def test_swap_bumps_epoch_exactly_once(self, tiny_dataset, trained_fism):
        server = _ivf_server(tiny_dataset, trained_fism)
        _warm(server, tiny_dataset)
        before = server.sccf.neighborhood.index.epoch
        server.maintain(imbalance_threshold=FORCE_RETRAIN)
        assert server.sccf.neighborhood.index.epoch == before + 1

    def test_report_lands_on_last_maintenance_and_health(self, tiny_dataset, trained_fism):
        server = _ivf_server(tiny_dataset, trained_fism)
        _warm(server, tiny_dataset)
        report = server.maintain(imbalance_threshold=FORCE_RETRAIN)
        assert server.last_maintenance is report
        assert server.health().last_maintenance_error is None

    def test_journaled_mutations_replayed_bit_identically(
        self, tiny_dataset, trained_fism, monkeypatch
    ):
        """Mutations that land *during* the shadow build end up in the
        published index exactly as if the retrain had been in place."""

        during = _ivf_server(tiny_dataset, trained_fism)
        after = _ivf_server(tiny_dataset, trained_fism)
        _warm(during, tiny_dataset)
        _warm(after, tiny_dataset)
        users = tiny_dataset.evaluation_users()
        mutations = [(users[0], 2), (users[1], 3), (tiny_dataset.num_users + 1, 4)]

        real_kmeans = ivf_module.kmeans
        injected = []

        def mutating_kmeans(*args, **kwargs):
            if not injected:
                injected.append(True)
                # the shadow is mid-retrain: these writes hit the *live*
                # index and the journal, never the half-built shadow
                during.observe_batch(mutations)
            return real_kmeans(*args, **kwargs)

        monkeypatch.setattr(ivf_module, "kmeans", mutating_kmeans)
        report = during.maintain(imbalance_threshold=FORCE_RETRAIN, shadow=True)
        monkeypatch.setattr(ivf_module, "kmeans", real_kmeans)
        assert report.journaled_mutations >= 1

        # Control: retrain first (same RNG stream), then the same mutations.
        after.maintain(imbalance_threshold=FORCE_RETRAIN, shadow=True)
        after.observe_batch(mutations)
        _assert_recommend_parity(during, after, tiny_dataset)
        # the cold-start add journaled during the build grew the shadow too
        assert (
            during.sccf.neighborhood.num_users == after.sccf.neighborhood.num_users
        )


class TestFailureContainment:
    def test_kmeans_failure_leaves_live_index_serving_bit_identically(
        self, tiny_dataset, trained_fism, monkeypatch
    ):
        server = _ivf_server(tiny_dataset, trained_fism)
        control = _ivf_server(tiny_dataset, trained_fism)
        _warm(server, tiny_dataset)
        _warm(control, tiny_dataset)
        epoch_before = server.sccf.neighborhood.index.epoch

        def exploding_kmeans(*args, **kwargs):
            raise InjectedFault("kmeans died mid-recluster")

        monkeypatch.setattr(ivf_module, "kmeans", exploding_kmeans)
        with pytest.raises(InjectedFault):
            server.maintain(imbalance_threshold=FORCE_RETRAIN, shadow=True)
        monkeypatch.undo()

        # live index untouched: same epoch, bit-identical serving
        assert server.sccf.neighborhood.index.epoch == epoch_before
        _assert_recommend_parity(server, control, tiny_dataset)
        # the failure is on record for operators
        report = server.last_maintenance
        assert report is not None and report.shadow and not report.retrained
        assert report.error is not None and "InjectedFault" in report.error
        assert server.health().last_maintenance_error == report.error
        # the journal was closed — the next maintain starts a fresh one
        assert not server.sccf.neighborhood.index_journal_active
        ok = server.maintain(imbalance_threshold=FORCE_RETRAIN, shadow=True)
        assert ok.retrained and ok.error is None

    def test_scheduler_contains_shadow_failure_and_backs_off(
        self, tiny_dataset, trained_fism, monkeypatch
    ):
        server = _ivf_server(tiny_dataset, trained_fism)
        scheduler = MaintenanceScheduler(
            server, every_events=2, imbalance_threshold=FORCE_RETRAIN
        )

        def exploding_kmeans(*args, **kwargs):
            raise InjectedFault("kmeans died mid-recluster")

        monkeypatch.setattr(ivf_module, "kmeans", exploding_kmeans)
        assert scheduler.notify(2) is None  # contained, not propagated
        assert scheduler.maintenance_failures == 1
        assert scheduler.failure_streak == 1
        assert "InjectedFault" in scheduler.last_failure
        # backoff: the next attempt needs every_events * 2 events
        assert scheduler.notify(2) is None
        assert scheduler.maintenance_failures == 1  # no second attempt yet
        monkeypatch.undo()
        report = scheduler.notify(2)  # 4 accumulated >= 2 * 2**1
        assert report is not None and report.retrained
        assert scheduler.failure_streak == 0


class TestBackgroundShadow:
    def test_begin_poll_lifecycle(self, tiny_dataset, trained_fism):
        server = _ivf_server(tiny_dataset, trained_fism)
        _warm(server, tiny_dataset)
        assert server.begin_shadow_maintenance(imbalance_threshold=FORCE_RETRAIN) is None
        assert server.shadow_maintenance_active()
        with pytest.raises(RuntimeError, match="already running"):
            server.begin_shadow_maintenance()
        with pytest.raises(RuntimeError, match="already running"):
            server.maintain()
        # serving keeps answering while the build runs
        assert server.recommend(tiny_dataset.evaluation_users()[0], k=5) is not None
        report = server.poll_shadow_maintenance(wait=True)
        assert report is not None and report.retrained and report.shadow
        assert not server.shadow_maintenance_active()
        assert server.poll_shadow_maintenance() is None  # idempotent when idle

    def test_balanced_index_returns_report_without_launching(
        self, tiny_dataset, trained_fism
    ):
        server = _ivf_server(tiny_dataset, trained_fism)
        report = server.begin_shadow_maintenance(imbalance_threshold=50.0)
        assert report is not None and not report.retrained and report.shadow
        assert not server.shadow_maintenance_active()

    def test_unsupported_index_returns_report(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)  # brute force
        report = server.begin_shadow_maintenance()
        assert report is not None and not report.supported

    def test_mutations_during_background_build_survive_the_swap(
        self, tiny_dataset, trained_fism
    ):
        background = _ivf_server(tiny_dataset, trained_fism)
        control = _ivf_server(tiny_dataset, trained_fism)
        _warm(background, tiny_dataset)
        _warm(control, tiny_dataset)
        users = tiny_dataset.evaluation_users()
        assert background.begin_shadow_maintenance(imbalance_threshold=FORCE_RETRAIN) is None
        background.observe(users[0], 2)  # journaled while the worker builds
        report = background.poll_shadow_maintenance(wait=True)
        assert report is not None and report.journaled_mutations >= 1
        control.maintain(imbalance_threshold=FORCE_RETRAIN, shadow=True)
        control.observe(users[0], 2)
        _assert_recommend_parity(background, control, tiny_dataset)

    def test_background_failure_surfaces_at_poll(
        self, tiny_dataset, trained_fism, monkeypatch
    ):
        server = _ivf_server(tiny_dataset, trained_fism)
        _warm(server, tiny_dataset)

        def exploding_kmeans(*args, **kwargs):
            raise InjectedFault("kmeans died mid-recluster")

        monkeypatch.setattr(ivf_module, "kmeans", exploding_kmeans)
        assert server.begin_shadow_maintenance(imbalance_threshold=FORCE_RETRAIN) is None
        with pytest.raises(InjectedFault):
            server.poll_shadow_maintenance(wait=True)
        monkeypatch.undo()
        assert not server.shadow_maintenance_active()
        assert not server.sccf.neighborhood.index_journal_active
        assert "InjectedFault" in server.health().last_maintenance_error

    def test_background_scheduler_publishes_on_a_later_notify(
        self, tiny_dataset, trained_fism
    ):
        server = _ivf_server(tiny_dataset, trained_fism)
        scheduler = MaintenanceScheduler(
            server,
            every_events=3,
            imbalance_threshold=FORCE_RETRAIN,
            background=True,
        )
        users = tiny_dataset.evaluation_users()
        for user in users[:5]:
            server.observe(user, 1)
        assert scheduler.notify(3) is None  # trips the counter, launches
        assert server.shadow_maintenance_active()
        server._shadow_build.thread.join()  # let the worker finish re-clustering
        report = scheduler.notify(0)  # a later notify publishes the build
        assert report is not None and report.retrained and report.shadow
        assert scheduler.passes_run == 1
