"""Unit tests for the similarity-search substrate (brute force and IVF)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import (
    BruteForceIndex,
    IVFIndex,
    NeighborIndex,
    cosine_similarity,
    inner_product,
    kmeans,
    normalize_rows,
    pairwise_similarity,
)


class TestMetrics:
    def test_normalize_rows_unit_norm(self, rng):
        matrix = rng.normal(size=(10, 5))
        normalized = normalize_rows(matrix)
        np.testing.assert_allclose(np.linalg.norm(normalized, axis=1), np.ones(10), rtol=1e-10)

    def test_normalize_zero_row_untouched(self):
        matrix = np.zeros((2, 3))
        matrix[1] = [3.0, 0.0, 4.0]
        normalized = normalize_rows(matrix)
        np.testing.assert_allclose(normalized[0], np.zeros(3))
        np.testing.assert_allclose(np.linalg.norm(normalized[1]), 1.0)

    def test_cosine_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v[None, :])[0] == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([[0.0, 1.0]]))[0] == pytest.approx(0.0)

    def test_cosine_scale_invariance(self, rng):
        query = rng.normal(size=4)
        matrix = rng.normal(size=(6, 4))
        np.testing.assert_allclose(
            cosine_similarity(query, matrix), cosine_similarity(10 * query, 3 * matrix), rtol=1e-10
        )

    def test_inner_product(self):
        assert inner_product(np.array([1.0, 2.0]), np.array([[3.0, 4.0]]))[0] == pytest.approx(11.0)

    def test_pairwise_similarity_symmetric(self, rng):
        matrix = rng.normal(size=(5, 3))
        sim = pairwise_similarity(matrix)
        np.testing.assert_allclose(sim, sim.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(sim), np.ones(5), rtol=1e-10)

    def test_pairwise_unknown_metric(self):
        with pytest.raises(ValueError):
            pairwise_similarity(np.ones((2, 2)), metric="euclid")

    @given(st.integers(2, 20), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_cosine_bounded(self, n, d):
        rng = np.random.default_rng(n * 100 + d)
        matrix = rng.normal(size=(n, d))
        sims = cosine_similarity(rng.normal(size=d), matrix)
        assert np.all(sims <= 1.0 + 1e-9) and np.all(sims >= -1.0 - 1e-9)


class TestBruteForceIndex:
    def test_protocol_conformance(self):
        assert isinstance(BruteForceIndex(), NeighborIndex)
        assert isinstance(IVFIndex(), NeighborIndex)

    def test_self_is_top_neighbor(self, rng):
        vectors = rng.normal(size=(30, 8))
        index = BruteForceIndex().build(vectors)
        ids, sims = index.search(vectors[7], k=3)
        assert ids[0] == 7
        assert sims[0] == pytest.approx(1.0)

    def test_exclude_self(self, rng):
        vectors = rng.normal(size=(30, 8))
        index = BruteForceIndex().build(vectors)
        ids, _ = index.search(vectors[7], k=5, exclude=np.array([7]))
        assert 7 not in ids

    def test_results_sorted_descending(self, rng):
        vectors = rng.normal(size=(50, 6))
        index = BruteForceIndex().build(vectors)
        _, sims = index.search(rng.normal(size=6), k=10)
        assert np.all(np.diff(sims) <= 1e-12)

    def test_matches_naive_computation(self, rng):
        vectors = rng.normal(size=(40, 5))
        query = rng.normal(size=5)
        index = BruteForceIndex().build(vectors)
        ids, _ = index.search(query, k=5)
        naive = np.argsort(-cosine_similarity(query, vectors))[:5]
        np.testing.assert_array_equal(np.sort(ids), np.sort(naive))

    def test_k_larger_than_index(self, rng):
        vectors = rng.normal(size=(4, 3))
        index = BruteForceIndex().build(vectors)
        ids, _ = index.search(rng.normal(size=3), k=10)
        assert len(ids) == 4

    def test_inner_product_metric(self, rng):
        vectors = rng.normal(size=(10, 4))
        index = BruteForceIndex(metric="inner").build(vectors)
        query = rng.normal(size=4)
        ids, _ = index.search(query, k=1)
        assert ids[0] == int(np.argmax(vectors @ query))

    def test_update_vector(self, rng):
        vectors = rng.normal(size=(10, 4))
        index = BruteForceIndex().build(vectors)
        new_vector = rng.normal(size=4)
        index.update(3, new_vector)
        ids, _ = index.search(new_vector, k=1)
        assert ids[0] == 3

    def test_custom_ids(self, rng):
        vectors = rng.normal(size=(5, 3))
        index = BruteForceIndex().build(vectors, ids=np.array([10, 20, 30, 40, 50]))
        ids, _ = index.search(vectors[2], k=1)
        assert ids[0] == 30

    def test_errors(self, rng):
        index = BruteForceIndex()
        with pytest.raises(RuntimeError):
            index.search(np.ones(3), k=1)
        with pytest.raises(ValueError):
            BruteForceIndex(metric="bad")
        with pytest.raises(ValueError):
            BruteForceIndex(dtype=np.int32)
        built = BruteForceIndex().build(rng.normal(size=(4, 3)))
        with pytest.raises(ValueError):
            built.search(np.ones(3), k=0)
        with pytest.raises(ValueError):
            built.update(0, np.ones(7))

    def test_default_dtype_is_float32(self, rng):
        index = BruteForceIndex().build(rng.normal(size=(6, 4)))
        assert index._vectors.dtype == np.float32
        assert index._normalized.dtype == np.float32

    def test_float64_opt_in(self, rng):
        index = BruteForceIndex(dtype=np.float64).build(rng.normal(size=(6, 4)))
        assert index._vectors.dtype == np.float64
        _, sims = index.search(rng.normal(size=4), k=2)
        assert sims.dtype == np.float64

    def test_search_does_not_renormalize_index(self, rng, monkeypatch):
        """Regression: queries must score against the cached normalized rows.

        The seed implementation called ``cosine_similarity(query, vectors)``
        per search, re-normalizing all N index rows on every query.  Now the
        only normalization during search is of the query rows themselves.
        """

        import repro.ann.brute_force as brute_force_module

        vectors = rng.normal(size=(50, 8))
        index = BruteForceIndex().build(vectors)
        normalized_shapes = []
        original_normalize = brute_force_module.normalize_rows

        def counting_normalize(matrix):
            normalized_shapes.append(np.asarray(matrix).shape)
            return original_normalize(matrix)

        monkeypatch.setattr(brute_force_module, "normalize_rows", counting_normalize)
        assert not hasattr(brute_force_module, "cosine_similarity")  # never re-imported
        for _ in range(5):
            index.search(rng.normal(size=8), k=3)
        index.search_batch(rng.normal(size=(4, 8)), k=3)
        # every normalize call touched only query rows, never the 50-row index
        assert normalized_shapes
        assert all(shape[0] <= 4 for shape in normalized_shapes)

    def test_ivf_search_does_not_renormalize_index(self, rng, monkeypatch):
        import repro.ann.ivf as ivf_module

        vectors = rng.normal(size=(60, 8))
        index = IVFIndex(num_cells=4, n_probe=2, rng=rng).build(vectors)
        normalized_shapes = []
        original_normalize = ivf_module.normalize_rows

        def counting_normalize(matrix):
            normalized_shapes.append(np.asarray(matrix).shape)
            return original_normalize(matrix)

        monkeypatch.setattr(ivf_module, "normalize_rows", counting_normalize)
        for _ in range(5):
            index.search(rng.normal(size=8), k=3)
        assert normalized_shapes
        assert all(shape[0] == 1 for shape in normalized_shapes)


class TestKMeans:
    def test_basic_clustering(self, rng):
        # Two well separated blobs.
        a = rng.normal(0.0, 0.1, size=(20, 2))
        b = rng.normal(5.0, 0.1, size=(20, 2)) + np.array([5.0, 0.0])
        vectors = np.concatenate([a, b])
        centroids, assignments = kmeans(vectors, 2, rng=rng)
        assert centroids.shape == (2, 2)
        # all points of blob a share a cluster, all of blob b the other
        assert len(set(assignments[:20].tolist())) == 1
        assert len(set(assignments[20:].tolist())) == 1
        assert assignments[0] != assignments[-1]

    def test_clusters_capped_by_points(self, rng):
        vectors = rng.normal(size=(3, 2))
        centroids, _ = kmeans(vectors, 10, rng=rng)
        assert len(centroids) == 3

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.ones(5), 2)
        with pytest.raises(ValueError):
            kmeans(np.ones((5, 2)), 0)


class TestIVFIndex:
    def test_reasonable_recall(self, rng):
        vectors = rng.normal(size=(400, 16))
        exact = BruteForceIndex().build(vectors)
        approx = IVFIndex(num_cells=10, n_probe=5, rng=rng).build(vectors)
        recalls = []
        for _ in range(20):
            query = rng.normal(size=16)
            true_ids, _ = exact.search(query, k=20)
            approx_ids, _ = approx.search(query, k=20)
            recalls.append(len(set(true_ids) & set(approx_ids)) / 20)
        assert np.mean(recalls) > 0.5

    def test_probe_all_cells_equals_exact(self, rng):
        vectors = rng.normal(size=(60, 8))
        exact = BruteForceIndex().build(vectors)
        approx = IVFIndex(num_cells=4, n_probe=4, rng=rng).build(vectors)
        query = rng.normal(size=8)
        true_ids, _ = exact.search(query, k=10)
        approx_ids, _ = approx.search(query, k=10)
        np.testing.assert_array_equal(np.sort(true_ids), np.sort(approx_ids))

    def test_exclude(self, rng):
        vectors = rng.normal(size=(30, 4))
        index = IVFIndex(num_cells=3, n_probe=3, rng=rng).build(vectors)
        ids, _ = index.search(vectors[5], k=5, exclude=np.array([5]))
        assert 5 not in ids

    def test_update_moves_vector_between_cells(self, rng):
        vectors = rng.normal(size=(50, 4))
        index = IVFIndex(num_cells=5, n_probe=5, rng=rng).build(vectors)
        target = -vectors[0] * 10
        index.update(0, target)
        ids, _ = index.search(target, k=1)
        assert ids[0] == 0

    def test_errors(self):
        with pytest.raises(ValueError):
            IVFIndex(num_cells=0)
        with pytest.raises(RuntimeError):
            IVFIndex().search(np.ones(2), k=1)
        with pytest.raises(ValueError):
            IVFIndex(dtype=np.int16)

    def test_cells_stored_as_sets(self, rng):
        """Regression for the O(cell-size) ``list.remove`` in ``update``."""

        vectors = rng.normal(size=(40, 4))
        index = IVFIndex(num_cells=4, n_probe=4, rng=rng).build(vectors)
        assert all(isinstance(cell, set) for cell in index._cells.values())
        members = sorted(position for cell in index._cells.values() for position in cell)
        assert members == list(range(40))

    def test_update_keeps_search_output_identical(self, rng):
        """After arbitrary updates, search equals a freshly-built exact scan."""

        vectors = rng.normal(size=(80, 6))
        index = IVFIndex(num_cells=5, n_probe=5, rng=rng).build(vectors)
        updated = vectors.copy()
        for position in [3, 17, 3, 64, 42, 17]:
            updated[position] = rng.normal(size=6) * 3
            index.update(position, updated[position])
        # cells still partition all positions exactly once
        members = sorted(position for cell in index._cells.values() for position in cell)
        assert members == list(range(80))
        exact = BruteForceIndex().build(updated)
        for _ in range(5):
            query = rng.normal(size=6)
            approx_ids, _ = index.search(query, k=10)
            exact_ids, _ = exact.search(query, k=10)
            np.testing.assert_array_equal(np.sort(approx_ids), np.sort(exact_ids))


class TestIndexGrowth:
    """`add` / `update_batch` — the streaming-ingestion surface of both indexes."""

    def test_brute_force_add_grows_and_is_searchable(self, rng):
        vectors = rng.normal(size=(10, 4))
        index = BruteForceIndex().build(vectors)
        extra = rng.normal(size=(3, 4))
        index.add(extra)
        assert index.size == 13
        for offset in range(3):
            ids, _ = index.search(extra[offset], k=1)
            assert ids[0] == 10 + offset

    def test_brute_force_add_requires_build(self, rng):
        with pytest.raises(RuntimeError):
            BruteForceIndex().add(rng.normal(size=(2, 3)))

    def test_brute_force_add_dimension_mismatch(self, rng):
        index = BruteForceIndex().build(rng.normal(size=(4, 3)))
        with pytest.raises(ValueError):
            index.add(rng.normal(size=(2, 5)))

    def test_brute_force_update_batch_matches_sequential(self, rng):
        vectors = rng.normal(size=(12, 5))
        sequential = BruteForceIndex().build(vectors)
        batched = BruteForceIndex().build(vectors)
        positions = np.asarray([2, 7, 9])
        replacements = rng.normal(size=(3, 5))
        for position, vector in zip(positions, replacements):
            sequential.update(int(position), vector)
        batched.update_batch(positions, replacements)
        np.testing.assert_array_equal(sequential._vectors, batched._vectors)
        np.testing.assert_array_equal(sequential._normalized, batched._normalized)

    def test_brute_force_update_batch_errors(self, rng):
        index = BruteForceIndex().build(rng.normal(size=(4, 3)))
        with pytest.raises(ValueError):
            index.update_batch([0, 1], rng.normal(size=(1, 3)))  # row count mismatch
        with pytest.raises(ValueError):
            index.update_batch([9], rng.normal(size=(1, 3)))  # out of range

    def test_ivf_add_grows_and_partitions_cells(self, rng):
        vectors = rng.normal(size=(30, 4))
        index = IVFIndex(num_cells=4, n_probe=4, rng=rng).build(vectors)
        extra = rng.normal(size=(5, 4))
        index.add(extra)
        assert index.size == 35
        members = sorted(position for cell in index._cells.values() for position in cell)
        assert members == list(range(35))
        for offset in range(5):
            ids, _ = index.search(extra[offset], k=1)
            assert ids[0] == 30 + offset

    def test_ivf_update_batch_matches_sequential(self, rng):
        vectors = rng.normal(size=(40, 4))
        sequential = IVFIndex(num_cells=4, n_probe=4, rng=np.random.default_rng(3)).build(vectors)
        batched = IVFIndex(num_cells=4, n_probe=4, rng=np.random.default_rng(3)).build(vectors)
        positions = np.asarray([0, 13, 27])
        replacements = rng.normal(size=(3, 4)) * 3
        for position, vector in zip(positions, replacements):
            sequential.update(int(position), vector)
        batched.update_batch(positions, replacements)
        np.testing.assert_array_equal(sequential._vectors, batched._vectors)
        np.testing.assert_array_equal(sequential._assignments, batched._assignments)
        assert sequential._cells == batched._cells
        members = sorted(position for cell in batched._cells.values() for position in cell)
        assert members == list(range(40))

    def test_ivf_update_batch_duplicate_positions_last_wins(self, rng):
        """Duplicated positions must not leave a row a member of two cells."""

        vectors = rng.normal(size=(40, 4))
        index = IVFIndex(num_cells=4, n_probe=4, rng=np.random.default_rng(3)).build(vectors)
        first, last = rng.normal(size=4) * 5, -rng.normal(size=4) * 5
        index.update_batch(np.asarray([5, 5]), np.stack([first, last]))
        members = sorted(position for cell in index._cells.values() for position in cell)
        assert members == list(range(40))  # cells still partition every row exactly once
        np.testing.assert_array_equal(index._vectors[5], np.asarray(last, dtype=index.dtype))
        expected = IVFIndex(num_cells=4, n_probe=4, rng=np.random.default_rng(3)).build(vectors)
        expected.update(5, last)
        assert index._assignments[5] == expected._assignments[5]

    def test_brute_force_add_rejects_colliding_ids(self, rng):
        """Duplicate ids break per-query exclusion masking; add must refuse them."""

        index = BruteForceIndex().build(rng.normal(size=(5, 3)))
        with pytest.raises(ValueError, match="collide"):
            index.add(rng.normal(size=(1, 3)), ids=np.array([2]))
        with pytest.raises(ValueError, match="unique"):
            index.add(rng.normal(size=(2, 3)), ids=np.array([8, 8]))
        assert index.size == 5  # failed adds must not grow the index

    def test_ivf_add_rejects_colliding_ids(self, rng):
        index = IVFIndex(num_cells=2, n_probe=2, rng=rng).build(rng.normal(size=(8, 3)))
        with pytest.raises(ValueError, match="collide"):
            index.add(rng.normal(size=(1, 3)), ids=np.array([0]))
        with pytest.raises(ValueError, match="unique"):
            index.add(rng.normal(size=(2, 3)), ids=np.array([9, 9]))
        assert index.size == 8
        members = sorted(p for cell in index._cells.values() for p in cell)
        assert members == list(range(8))

    def test_build_rejects_duplicate_ids(self, rng):
        with pytest.raises(ValueError, match="unique"):
            BruteForceIndex().build(rng.normal(size=(3, 2)), ids=np.array([1, 2, 1]))
        with pytest.raises(ValueError, match="unique"):
            IVFIndex(num_cells=2).build(rng.normal(size=(3, 2)), ids=np.array([1, 2, 1]))

    def test_default_add_ids_after_custom_build_ids_may_collide(self, rng):
        """Default add ids continue the positional numbering; a custom build id
        sitting on that range is now caught instead of silently duplicated."""

        index = BruteForceIndex().build(rng.normal(size=(2, 3)), ids=np.array([2, 10]))
        with pytest.raises(ValueError, match="collide"):
            index.add(rng.normal(size=(1, 3)))  # default id would be 2

    def test_update_batch_helper_falls_back_to_loop(self, rng):
        from repro.ann import update_batch

        class SingleRowIndex:
            """Minimal third-party index: only the single-row protocol."""

            def __init__(self):
                self.calls = []

            def build(self, vectors, ids=None):
                return self

            def search(self, query, k, exclude=None):
                return np.empty(0, dtype=np.int64), np.empty(0)

            def update(self, position, vector):
                self.calls.append((position, np.asarray(vector).copy()))

        index = SingleRowIndex()
        replacements = rng.normal(size=(2, 3))
        update_batch(index, [4, 8], replacements)
        assert [position for position, _ in index.calls] == [4, 8]
        np.testing.assert_array_equal(index.calls[1][1], replacements[1])
