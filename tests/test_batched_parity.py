"""Parity tests between the single-query and batched execution paths.

The batched serving/evaluation pipeline (``search_batch``,
``infer_user_embeddings_batch``, ``score_for_users``, ``score_items_batch``,
``Evaluator(batch_size=...)``) must produce the same rankings as the
query-at-a-time path it accelerates; these tests pin that contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import BruteForceIndex, IVFIndex, search_batch
from repro.core import UserNeighborhoodComponent
from repro.eval import Evaluator
from repro.models import YouTubeDNN


class TestIndexBatchParity:
    """BLAS kernels differ between batch sizes, so float32 similarities agree
    to float32 precision (~1e-7) while rankings are identical; the float64
    opt-in agrees to 1e-9."""

    @pytest.mark.parametrize("metric", ["cosine", "inner"])
    @pytest.mark.parametrize(
        "dtype,atol", [(np.float32, 2e-6), (np.float64, 1e-9)]
    )
    def test_brute_force_search_batch_matches_search(self, rng, metric, dtype, atol):
        vectors = rng.normal(size=(80, 12))
        index = BruteForceIndex(metric=metric, dtype=dtype).build(vectors)
        queries = rng.normal(size=(17, 12))
        exclusions = [
            None if row % 3 == 0 else np.asarray([row, (row * 7) % 80], dtype=np.int64)
            for row in range(len(queries))
        ]
        batched = index.search_batch(queries, k=9, exclude_per_query=exclusions)
        for row, query in enumerate(queries):
            ids, sims = index.search(query, k=9, exclude=exclusions[row])
            np.testing.assert_array_equal(batched[row][0], ids)
            np.testing.assert_allclose(batched[row][1], sims, rtol=0, atol=atol)

    @pytest.mark.parametrize(
        "dtype,atol", [(np.float32, 2e-6), (np.float64, 1e-9)]
    )
    def test_ivf_search_batch_matches_search(self, rng, dtype, atol):
        vectors = rng.normal(size=(120, 10))
        index = IVFIndex(num_cells=6, n_probe=2, rng=rng, dtype=dtype).build(vectors)
        queries = rng.normal(size=(25, 10))
        batched = index.search_batch(queries, k=7)
        for row, query in enumerate(queries):
            ids, sims = index.search(query, k=7)
            np.testing.assert_array_equal(batched[row][0], ids)
            np.testing.assert_allclose(batched[row][1], sims, rtol=0, atol=atol)

    def test_search_batch_helper_falls_back_to_loop(self, rng):
        class MinimalIndex:
            """Single-query-only index standing in for third-party code."""

            def __init__(self):
                self.inner = BruteForceIndex()

            def build(self, vectors, ids=None):
                self.inner.build(vectors, ids)
                return self

            def search(self, query, k, exclude=None):
                return self.inner.search(query, k, exclude=exclude)

            def update(self, position, vector):
                self.inner.update(position, vector)

        vectors = rng.normal(size=(30, 6))
        minimal = MinimalIndex().build(vectors)
        reference = BruteForceIndex().build(vectors)
        queries = rng.normal(size=(5, 6))
        via_helper = search_batch(minimal, queries, k=4)
        via_native = reference.search_batch(queries, k=4)
        for (helper_ids, helper_sims), (native_ids, native_sims) in zip(via_helper, via_native):
            np.testing.assert_array_equal(helper_ids, native_ids)
            np.testing.assert_array_equal(helper_sims, native_sims)


class TestEmbeddingBatchParity:
    def _histories(self, dataset, extra_empty=True):
        histories = [dataset.train.user_sequence(user) for user in range(dataset.num_users)]
        if extra_empty:
            histories[0] = []
        return histories

    @pytest.mark.parametrize("model_fixture", ["trained_fism", "trained_sasrec"])
    def test_batch_matches_loop(self, request, tiny_dataset, model_fixture):
        model = request.getfixturevalue(model_fixture)
        histories = self._histories(tiny_dataset)
        batched = model.infer_user_embeddings_batch(histories)
        for row, history in enumerate(histories):
            expected = (
                model.infer_user_embedding(history)
                if history
                else np.zeros(model.embedding_dim)
            )
            np.testing.assert_allclose(batched[row], expected, rtol=0, atol=1e-9)

    def test_youtube_dnn_batch_matches_loop(self, tiny_dataset):
        model = YouTubeDNN(embedding_dim=8, num_epochs=1, seed=5).fit(tiny_dataset)
        histories = self._histories(tiny_dataset)
        batched = model.infer_user_embeddings_batch(histories)
        for row, history in enumerate(histories):
            expected = (
                model.infer_user_embedding(history)
                if history
                else np.zeros(model.embedding_dim)
            )
            np.testing.assert_allclose(batched[row], expected, rtol=0, atol=1e-9)

    def test_score_items_batch_matches_score_items(self, trained_fism, tiny_dataset):
        users = tiny_dataset.evaluation_users()[:8]
        batched = trained_fism.score_items_batch(users)
        for row, user in enumerate(users):
            np.testing.assert_allclose(
                batched[row], trained_fism.score_items(user), rtol=0, atol=1e-9
            )


class TestNeighborhoodBatchParity:
    @pytest.fixture(scope="class")
    def component(self, tiny_dataset, trained_fism):
        """Default (float32-index) component."""

        return UserNeighborhoodComponent(num_neighbors=8).fit(trained_fism, tiny_dataset)

    @pytest.fixture(scope="class")
    def component64(self, tiny_dataset, trained_fism):
        """Full-precision opt-in: parity is expected at 1e-9 here."""

        return UserNeighborhoodComponent(
            num_neighbors=8, index=BruteForceIndex(metric="cosine", dtype=np.float64)
        ).fit(trained_fism, tiny_dataset)

    def test_score_for_users_matches_score_for_user_1e9(self, component64, tiny_dataset):
        users = tiny_dataset.evaluation_users()[:10]
        batched = component64.score_for_users(users)
        for row, user in enumerate(users):
            single = component64.score_for_user(user, component64.user_embedding(user))
            np.testing.assert_allclose(batched[row], single, rtol=0, atol=1e-9)

    def test_score_for_users_default_index(self, component, tiny_dataset):
        users = tiny_dataset.evaluation_users()[:10]
        batched = component.score_for_users(users)
        for row, user in enumerate(users):
            single = component.score_for_user(user, component.user_embedding(user))
            np.testing.assert_allclose(batched[row], single, rtol=0, atol=2e-5)

    def test_score_for_users_with_history_override(self, component64, tiny_dataset):
        users = tiny_dataset.evaluation_users()[:5]
        histories = [tiny_dataset.train.user_sequence(user) for user in users]
        embeddings = np.stack([component64.user_embedding(user) for user in users])
        batched = component64.score_for_users(users, user_embeddings=embeddings, histories=histories)
        for row, user in enumerate(users):
            single = component64.score_for_user(user, embeddings[row], history=histories[row])
            np.testing.assert_allclose(batched[row], single, rtol=0, atol=1e-9)
            assert np.all(batched[row][histories[row]] == 0.0)

    def test_batched_top_k_rankings_identical(self, component, tiny_dataset):
        users = tiny_dataset.evaluation_users()[:10]
        batched = component.score_for_users(users)
        for row, user in enumerate(users):
            single = component.score_for_user(user, component.user_embedding(user))
            np.testing.assert_array_equal(
                np.argsort(-batched[row], kind="stable")[:20],
                np.argsort(-single, kind="stable")[:20],
            )

    def test_scores_correct_after_realtime_update(self, tiny_dataset, trained_fism):
        """Single-user updates overlay the CSR instead of invalidating it;
        scoring must still see the fresh recent items immediately."""

        component = UserNeighborhoodComponent(num_neighbors=8, recency_window=3).fit(
            trained_fism, tiny_dataset
        )
        component._ensure_recent_csr()
        users = tiny_dataset.evaluation_users()[:4]
        for user in users:
            component.update_user(
                user, trained_fism, tiny_dataset.train.user_sequence(user) + [0, 1]
            )
        assert component._recent_overrides  # overlay path active, no full rebuild
        for user in users:
            embedding = component.user_embedding(user)
            scores = component.uu_scores(embedding, exclude_user=user)
            # manual eq. (12) from the authoritative per-user dict
            ids, sims = component.neighbors(embedding, exclude_user=user)
            expected = np.zeros(tiny_dataset.num_items)
            for neighbor, similarity in zip(ids, sims):
                if similarity <= 0:
                    continue
                for item in component.recent_items(int(neighbor)):
                    if 0 <= item < tiny_dataset.num_items:
                        expected[item] += similarity
            np.testing.assert_allclose(scores, expected, rtol=0, atol=1e-9)
        # batched path agrees with the single path under the overlay too
        batched = component.score_for_users(users)
        for row, user in enumerate(users):
            single = component.score_for_user(user, component.user_embedding(user))
            np.testing.assert_allclose(batched[row], single, rtol=0, atol=2e-5)

    def test_input_validation(self, component):
        with pytest.raises(ValueError):
            component.score_for_users([0, 1], histories=[[0]])
        with pytest.raises(ValueError):
            component.score_for_users([10**6])
        with pytest.raises(ValueError):
            component.score_for_users([0, 1], user_embeddings=np.zeros((3, 4)))


class TestSCCFBatchParity:
    @pytest.mark.parametrize("mode,atol", [("ui", 1e-9), ("uu", 2e-5), ("sccf", 1e-4)])
    def test_score_items_batch_matches_single(self, fitted_sccf, tiny_dataset, mode, atol):
        fitted_sccf.set_mode(mode)
        users = tiny_dataset.evaluation_users()[:8]
        histories = [
            tiny_dataset.full_sequence(user, include_validation=True) for user in users
        ]
        batched = fitted_sccf.score_items_batch(users, histories=histories)
        for row, user in enumerate(users):
            single = fitted_sccf.score_items(user, history=histories[row])
            np.testing.assert_allclose(batched[row], single, rtol=0, atol=atol)
            # top-k rankings are identical between the two paths
            np.testing.assert_array_equal(
                np.argsort(-batched[row], kind="stable")[:20],
                np.argsort(-single, kind="stable")[:20],
            )


class TestEvaluatorBatchParity:
    @pytest.mark.parametrize("mode", ["ui", "uu", "sccf"])
    def test_batched_evaluation_matches_per_user(self, fitted_sccf, tiny_dataset, mode):
        fitted_sccf.set_mode(mode)
        evaluator = Evaluator(cutoffs=(10, 20))
        per_user = evaluator.evaluate(fitted_sccf, tiny_dataset)
        batched = evaluator.evaluate(fitted_sccf, tiny_dataset, batch_size=16)
        assert per_user.ranks == batched.ranks
        assert per_user.num_users == batched.num_users
        for name, value in per_user.metrics.items():
            assert batched.metrics[name] == pytest.approx(value, abs=1e-9)

    def test_batch_size_validation(self, fitted_sccf, tiny_dataset):
        with pytest.raises(ValueError):
            Evaluator().evaluate(fitted_sccf, tiny_dataset, batch_size=0)

    def test_default_loop_model_supports_batching(self, tiny_dataset):
        from repro.models import Popularity

        pop = Popularity().fit(tiny_dataset)
        evaluator = Evaluator(cutoffs=(20,))
        per_user = evaluator.evaluate(pop, tiny_dataset)
        batched = evaluator.evaluate(pop, tiny_dataset, batch_size=7)
        assert per_user.ranks == batched.ranks
