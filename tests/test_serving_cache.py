"""Unit tests for the versioned serving cache and its satellites.

Covers the cache primitives (token-validated LRU layers, ``CacheStats``
accounting), the version/epoch counters at the mutation points, the cache
wired through SCCF / RealTimeServer, the frozen NumPy merger fast path, the
separate recommend-latency window, and the maintenance scheduler.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.ann import BruteForceIndex, IVFIndex, ShardedIndex
from repro.core import (
    SCCF,
    IntegratingMLP,
    MaintenanceScheduler,
    RealTimeServer,
    SCCFConfig,
    ServingCache,
    UserNeighborhoodComponent,
)
from repro.core.cache import MISS, CacheStats, LayerStats, LRUCache, history_fingerprint


# --------------------------------------------------------------------- #
# cache primitives
# --------------------------------------------------------------------- #
class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache("test", capacity=4)
        assert cache.get("a", (1,)) is MISS
        cache.put("a", (1,), "value")
        assert cache.get("a", (1,)) == "value"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.invalidations == 0

    def test_stale_token_invalidates_and_drops(self):
        cache = LRUCache("test", capacity=4)
        cache.put("a", (1,), "old")
        assert cache.get("a", (2,)) is MISS
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1
        # The stale entry is gone: even the old token can't resurrect it.
        assert cache.get("a", (1,)) is MISS
        assert cache.stats.invalidations == 1  # no double count

    def test_capacity_bound_evicts_lru(self):
        cache = LRUCache("test", capacity=2)
        cache.put("a", (0,), 1)
        cache.put("b", (0,), 2)
        cache.get("a", (0,))          # refresh "a" — "b" is now LRU
        cache.put("c", (0,), 3)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert "b" not in cache
        assert cache.get("a", (0,)) == 1
        assert cache.get("c", (0,)) == 3

    def test_replacing_existing_key_does_not_evict(self):
        cache = LRUCache("test", capacity=2)
        cache.put("a", (0,), 1)
        cache.put("b", (0,), 2)
        cache.put("a", (1,), 10)
        assert cache.stats.evictions == 0
        assert cache.get("a", (1,)) == 10

    def test_zero_capacity_disables_layer(self):
        cache = LRUCache("test", capacity=0)
        cache.put("a", (0,), 1)
        assert len(cache) == 0
        assert cache.get("a", (0,)) is MISS

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache("test", capacity=-1)

    def test_clear_preserves_stats(self):
        cache = LRUCache("test", capacity=4)
        cache.put("a", (0,), 1)
        cache.get("a", (0,))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        cache.reset_stats()
        assert cache.stats.hits == 0

    def test_cached_none_value_is_not_a_miss(self):
        cache = LRUCache("test", capacity=4)
        cache.put("a", (0,), None)
        assert cache.get("a", (0,)) is None
        assert cache.stats.hits == 1


class TestByteBudget:
    """Memory-budget eviction: the layer is bounded by tracked nbytes, not count."""

    def test_evicts_lru_tail_to_fit_budget(self):
        row = np.zeros(100)  # 800 bytes
        cache = LRUCache("scores", capacity=1000, max_bytes=2000)
        cache.put("a", (0,), row)
        cache.put("b", (0,), row)
        assert cache.total_bytes == 1600
        cache.get("a", (0,))          # refresh "a" — "b" is now LRU
        cache.put("c", (0,), row)     # 2400 bytes > budget: "b" must go
        assert cache.total_bytes == 1600
        assert cache.stats.evictions == 1
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_entry_count_never_bounds_before_bytes(self):
        # 100 entries of 8 bytes fit a 1 KiB budget at capacity 1000: far
        # fewer than capacity, far more than a count-agnostic budget allows.
        cache = LRUCache("scores", capacity=1000, max_bytes=1024)
        for index in range(200):
            cache.put(index, (0,), np.zeros(1))  # 8 bytes each
        assert len(cache) == 128
        assert cache.total_bytes == 1024

    def test_oversized_value_is_not_stored(self):
        cache = LRUCache("scores", capacity=4, max_bytes=100)
        cache.put("small", (0,), np.zeros(4))
        cache.put("huge", (0,), np.zeros(1000))
        assert "huge" not in cache
        assert cache.get("small", (0,)) is not MISS  # untouched by the refusal

    def test_replacement_updates_tracked_bytes(self):
        cache = LRUCache("scores", capacity=4, max_bytes=10_000)
        cache.put("a", (0,), np.zeros(100))
        cache.put("a", (1,), np.zeros(10))
        assert cache.total_bytes == 80

    def test_invalidation_and_clear_release_bytes(self):
        cache = LRUCache("scores", capacity=4, max_bytes=10_000)
        cache.put("a", (0,), np.zeros(100))
        assert cache.get("a", (1,)) is MISS  # stale token drops the entry
        assert cache.total_bytes == 0
        cache.put("b", (0,), np.zeros(50))
        cache.clear()
        assert cache.total_bytes == 0

    def test_container_values_are_summed(self):
        cache = LRUCache("neighbors", capacity=4, max_bytes=10_000)
        cache.put("a", (0,), (np.zeros(10), np.zeros(10)))
        assert cache.total_bytes == 160

    def test_validation_and_wiring(self):
        with pytest.raises(ValueError, match="max_bytes"):
            LRUCache("scores", capacity=4, max_bytes=0)
        with pytest.raises(ValueError):
            ServingCache(capacity=4, max_score_bytes=-1)
        cache = ServingCache(capacity=4, max_score_bytes=4096)
        assert cache.scores.max_bytes == 4096
        assert cache.embeddings.max_bytes is None  # only the scores layer

    def test_served_scores_respect_budget(self, fitted_sccf, tiny_dataset):
        """End to end: a tiny budget keeps the scores layer at ~one row."""

        row_bytes = tiny_dataset.num_items * 8
        cache = ServingCache(capacity=64, max_score_bytes=row_bytes + 1)
        fitted_sccf.attach_cache(cache)
        try:
            users = tiny_dataset.evaluation_users()[:6]
            scores = fitted_sccf.score_items_batch(users)
            again = fitted_sccf.score_items_batch(users)
            np.testing.assert_array_equal(scores, again)  # eviction never corrupts
            assert cache.scores.total_bytes <= row_bytes + 1
            assert len(cache.scores) <= 1
            assert cache.scores.stats.evictions >= len(users) - 1
        finally:
            fitted_sccf.attach_cache(None)


class TestCacheStats:
    def test_deterministic_accounting(self):
        cache = LRUCache("layer", capacity=2)
        for _ in range(3):
            cache.get("k", (0,))            # 3 misses
        cache.put("k", (0,), 1)
        cache.get("k", (0,))                # 1 hit
        cache.get("k", (1,))                # 1 invalidation + miss
        cache.put("a", (0,), 1)
        cache.put("b", (0,), 2)
        cache.put("c", (0,), 3)             # 1 eviction
        stats = CacheStats(layers=[cache.stats])
        assert stats.hits == 1
        assert stats.misses == 4
        assert stats.invalidations == 1
        assert stats.evictions == 1
        assert stats.hit_rate == pytest.approx(1 / 5)

    def test_empty_stats(self):
        stats = CacheStats(layers=[LayerStats("a")])
        assert stats.hit_rate == 0.0
        assert stats.layer("a").lookups == 0
        with pytest.raises(KeyError):
            stats.layer("missing")

    def test_as_dict_and_summary(self):
        cache = ServingCache(capacity=8)
        cache.embeddings.put(0, (0,), np.zeros(3))
        cache.embeddings.get(0, (0,))
        report = cache.stats()
        payload = report.as_dict()
        assert payload["hits"] == 1
        assert {layer["name"] for layer in payload["layers"]} == {
            "embeddings", "neighbors", "scores", "recommendations",
        }
        text = report.summary()
        assert "embeddings" in text and "hit rate" in text

    def test_serving_cache_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            ServingCache(capacity=0)

    def test_serving_cache_clear_and_len(self):
        cache = ServingCache(capacity=8)
        cache.scores.put(1, (0,), np.zeros(2))
        cache.recommendations.put((1, 5, True), (0,), (1, 2))
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0


class TestHistoryFingerprint:
    def test_fingerprint_shape(self):
        assert history_fingerprint(None) == (-1, -1, 0)
        assert history_fingerprint([]) == (0, -1, hash(()))
        length, last, digest = history_fingerprint([7, 3, 9])
        assert (length, last) == (3, 9)
        assert digest == hash((7, 3, 9))

    def test_same_length_and_last_item_do_not_collide(self):
        # (length, last) alone would collide here; the content hash must not.
        assert history_fingerprint([3, 5]) != history_fingerprint([4, 5])


# --------------------------------------------------------------------- #
# version / epoch counters at the mutation points
# --------------------------------------------------------------------- #
class TestIndexEpochs:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: BruteForceIndex(),
            lambda: IVFIndex(num_cells=4, n_probe=2),
            lambda: ShardedIndex(num_shards=2),
        ],
        ids=["brute", "ivf", "sharded"],
    )
    def test_every_mutation_bumps_epoch(self, factory, rng):
        index = factory()
        assert index.epoch == 0
        index.build(rng.normal(size=(12, 8)))
        after_build = index.epoch
        assert after_build > 0

        index.add(rng.normal(size=(2, 8)))
        after_add = index.epoch
        assert after_add > after_build

        index.update(0, rng.normal(size=8))
        after_update = index.epoch
        assert after_update > after_add

        index.update_batch(np.asarray([1, 2]), rng.normal(size=(2, 8)))
        after_batch = index.epoch
        assert after_batch > after_update

        if hasattr(index, "retrain"):
            index.retrain()
            assert index.epoch > after_batch

    def test_empty_update_batch_does_not_bump(self, rng):
        index = BruteForceIndex().build(rng.normal(size=(4, 8)))
        before = index.epoch
        index.update_batch(np.asarray([], dtype=np.int64), np.zeros((0, 8)))
        assert index.epoch == before

    def test_search_does_not_bump(self, rng):
        index = BruteForceIndex().build(rng.normal(size=(6, 8)))
        before = index.epoch
        index.search(rng.normal(size=8), k=3)
        index.search_batch(rng.normal(size=(2, 8)), k=3)
        assert index.epoch == before


class TestUserVersions:
    def test_versions_bump_only_touched_users(self, fitted_sccf, trained_fism, tiny_dataset):
        neighborhood = fitted_sccf.neighborhood
        users = tiny_dataset.evaluation_users()[:2]
        baseline = [neighborhood.user_version(user) for user in range(neighborhood.num_users)]
        assert all(isinstance(v, int) for v in baseline)

        histories = [tiny_dataset.train.user_sequence(user) + [1] for user in users]
        neighborhood.update_users(users, trained_fism, histories)
        for user in users:
            assert neighborhood.user_version(user) == baseline[user] + 1
        untouched = [u for u in range(neighborhood.num_users) if u not in set(users)]
        for user in untouched[:10]:
            assert neighborhood.user_version(user) == baseline[user]

    def test_versions_monotonic_under_repeats(self, fitted_sccf, trained_fism, tiny_dataset):
        neighborhood = fitted_sccf.neighborhood
        user = tiny_dataset.evaluation_users()[0]
        seen = [neighborhood.user_version(user)]
        for extra in range(3):
            history = tiny_dataset.train.user_sequence(user) + list(range(extra + 1))
            neighborhood.update_users([user], trained_fism, [history])
            seen.append(neighborhood.user_version(user))
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)

    def test_observe_bumps_version(self, tiny_dataset, trained_fism):
        sccf = SCCF(
            trained_fism,
            SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2, seed=3),
        ).fit(tiny_dataset, fit_ui_model=False)
        server = RealTimeServer(sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        before = sccf.neighborhood.user_version(user)
        server.observe(user, 1)
        assert sccf.neighborhood.user_version(user) == before + 1


# --------------------------------------------------------------------- #
# the cache threaded through SCCF and the server
# --------------------------------------------------------------------- #
@pytest.fixture()
def cached_sccf(tiny_dataset, trained_fism):
    sccf = SCCF(
        trained_fism,
        SCCFConfig(
            num_neighbors=10, candidate_list_size=30, merger_epochs=2, cache_capacity=64, seed=3
        ),
    )
    sccf.fit(tiny_dataset, fit_ui_model=False)
    return sccf


class TestServingCacheIntegration:
    def test_config_knob_attaches_cache(self, cached_sccf):
        assert isinstance(cached_sccf.cache, ServingCache)
        assert cached_sccf.neighborhood.cache is cached_sccf.cache
        assert cached_sccf.cache_stats() is not None

    def test_cache_disabled_by_default(self, fitted_sccf):
        assert fitted_sccf.cache is None
        assert fitted_sccf.cache_stats() is None

    def test_repeat_recommend_hits_and_matches(self, cached_sccf, tiny_dataset):
        server = RealTimeServer(cached_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        first = server.recommend(user, k=10)
        hits_before = cached_sccf.cache.recommendations.stats.hits
        second = server.recommend(user, k=10)
        assert second == first
        assert cached_sccf.cache.recommendations.stats.hits == hits_before + 1

    def test_observe_invalidates_recommendations(self, cached_sccf, tiny_dataset):
        server = RealTimeServer(cached_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        server.recommend(user, k=10)
        server.observe(user, 2)
        hits_before = cached_sccf.cache.recommendations.stats.hits
        server.recommend(user, k=10)
        assert cached_sccf.cache.recommendations.stats.hits == hits_before  # miss, not hit

    def test_two_servers_sharing_one_sccf_never_cross_serve(self, cached_sccf, tiny_dataset):
        """Regression: request keys are scoped per server.

        Two servers over one SCCF hold different streamed histories under the
        same shared version counters (e.g. a restart re-seeded from the
        dataset), so one must never hit the other's cached list.
        """

        user = tiny_dataset.evaluation_users()[0]
        server1 = RealTimeServer(cached_sccf, tiny_dataset)
        server1.observe(user, 3)
        server1.recommend(user, k=10)
        # Re-seeded from the dataset: server2 never saw the streamed event.
        server2 = RealTimeServer(cached_sccf, tiny_dataset)
        hits_before = cached_sccf.cache.recommendations.stats.hits
        fresh = server2.recommend(user, k=10)
        assert cached_sccf.cache.recommendations.stats.hits == hits_before
        # The streamed item is in server1's history, excluded there, but
        # server2's recompute must reflect its own (shorter) history.
        assert fresh == server2.recommend(user, k=10)[: len(fresh)]

    def test_set_mode_never_serves_another_modes_list(self, cached_sccf, tiny_dataset):
        """Regression: set_mode() changes the ranking without bumping any counter.

        The mode is part of the request key, so per-mode entries coexist and
        a mode switch can never serve the other mode's list.
        """

        server = RealTimeServer(cached_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        fused = server.recommend(user, k=10)
        cached_sccf.set_mode("ui")
        try:
            ui_list = server.recommend(user, k=10)
            hits = cached_sccf.cache.recommendations.stats.hits
            assert server.recommend(user, k=10) == ui_list  # ui entry caches fine
            assert cached_sccf.cache.recommendations.stats.hits == hits + 1
        finally:
            cached_sccf.set_mode("sccf")
        assert server.recommend(user, k=10) == fused
        assert ui_list != fused

    def test_interleaved_flows_coexist_instead_of_thrashing(self, cached_sccf, tiny_dataset):
        """Regression: content fingerprints live in keys, not tokens.

        Alternating two valid histories for one user must not evict each
        other's entries — the third call hits the first call's entry.
        """

        user = tiny_dataset.evaluation_users()[0]
        first = cached_sccf.score_items(user, history=[3, 5])
        cached_sccf.score_items(user, history=[4, 5])
        hits_before = cached_sccf.cache.scores.stats.hits
        invalidations_before = cached_sccf.cache.scores.stats.invalidations
        np.testing.assert_array_equal(cached_sccf.score_items(user, history=[3, 5]), first)
        assert cached_sccf.cache.scores.stats.hits == hits_before + 1
        assert cached_sccf.cache.scores.stats.invalidations == invalidations_before

    def test_merger_refit_invalidates_fused_entries(self, tiny_dataset, trained_fism):
        """Regression: re-training the merger behind a fitted SCCF's back.

        The merger generation is part of the scores/recommendations tokens,
        so post-hoc merger.fit()/freeze() drops every fused entry.
        """

        sccf = SCCF(
            trained_fism,
            SCCFConfig(
                num_neighbors=10, candidate_list_size=30, merger_epochs=2,
                cache_capacity=64, seed=3,
            ),
        ).fit(tiny_dataset, fit_ui_model=False)
        user = tiny_dataset.evaluation_users()[0]
        sccf.score_items(user)
        sccf.merger.freeze()  # the documented hand-mutation hook bumps generation
        hits_before = sccf.cache.scores.stats.hits
        sccf.score_items(user)
        assert sccf.cache.scores.stats.hits == hits_before  # stale entry not served

    def test_stats_snapshot_is_frozen(self, cached_sccf, tiny_dataset):
        server = RealTimeServer(cached_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        server.recommend(user, k=5)
        before = cached_sccf.cache_stats()
        hits_before = before.hits
        server.recommend(user, k=5)  # a hit — must not mutate the snapshot
        assert before.hits == hits_before
        assert cached_sccf.cache_stats().hits == hits_before + 1

    def test_other_users_observe_invalidates_via_epoch(self, cached_sccf, tiny_dataset):
        server = RealTimeServer(cached_sccf, tiny_dataset)
        user_a, user_b = tiny_dataset.evaluation_users()[:2]
        server.recommend(user_a, k=10)
        server.observe(user_b, 1)  # bumps the index epoch, not user_a's version
        hits_before = cached_sccf.cache.recommendations.stats.hits
        server.recommend(user_a, k=10)
        assert cached_sccf.cache.recommendations.stats.hits == hits_before

    def test_embedding_cache_survives_other_users_mutations(self, cached_sccf, tiny_dataset):
        server = RealTimeServer(cached_sccf, tiny_dataset)
        user_a, user_b = tiny_dataset.evaluation_users()[:2]
        server.recommend(user_a, k=10)
        server.observe(user_b, 1)
        hits_before = cached_sccf.cache.embeddings.stats.hits
        server.recommend(user_a, k=10)
        assert cached_sccf.cache.embeddings.stats.hits == hits_before + 1

    def test_score_items_batch_served_from_cache(self, cached_sccf, tiny_dataset):
        users = tiny_dataset.evaluation_users()[:5]
        first = cached_sccf.score_items_batch(users)
        second = cached_sccf.score_items_batch(users)
        np.testing.assert_array_equal(first, second)
        assert cached_sccf.cache.scores.stats.hits >= len(users)

    def test_cached_rows_are_private_copies(self, cached_sccf, tiny_dataset):
        users = tiny_dataset.evaluation_users()[:2]
        first = cached_sccf.score_items_batch(users)
        first[:] = 0.0  # caller mutates her copy
        second = cached_sccf.score_items_batch(users)
        assert not np.array_equal(first, second)

    def test_refit_clears_cache(self, cached_sccf, tiny_dataset):
        users = tiny_dataset.evaluation_users()[:3]
        cached_sccf.score_items_batch(users)
        assert len(cached_sccf.cache) > 0
        cached_sccf.fit(tiny_dataset, fit_ui_model=False)
        # Entries from before the re-fit cannot survive it.
        assert len(cached_sccf.cache.scores) == 0

    def test_cache_cannot_be_shared_between_stacks(self, tiny_dataset, trained_fism):
        """Regression: keys carry no model discriminator, so sharing cross-serves."""

        cache = ServingCache(capacity=16)
        sccf_a = SCCF(
            trained_fism,
            SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2, seed=3),
            cache=cache,
        )
        with pytest.raises(ValueError, match="already attached"):
            SCCF(
                trained_fism,
                SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2, seed=3),
                cache=cache,
            )
        # Detaching releases ownership, so the cache can move to a new stack.
        sccf_a.attach_cache(None)
        assert sccf_a.cache is None and sccf_a.neighborhood.cache is None
        cache.scores.put((0, (0, -1, 0)), (0,), np.zeros(2))
        reborn = SCCF(
            trained_fism,
            SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2, seed=3),
            cache=cache,
        )
        assert reborn.cache is cache
        assert len(cache) == 0  # the previous owner's entries were dropped

    def test_deepcopy_repoints_cache_ownership(self, cached_sccf, tiny_dataset):
        """Regression: a deepcopied stack must own its copied cache.

        weakref.ref is deepcopy-atomic, so the copy's cache would otherwise
        stay bound to the original SCCF forever.
        """

        import copy

        cached_sccf.score_items(tiny_dataset.evaluation_users()[0])
        clone = copy.deepcopy(cached_sccf)
        assert clone.cache is not cached_sccf.cache
        assert clone.cache._owner() is clone
        assert cached_sccf.cache._owner() is cached_sccf
        # Re-attaching its own cache is a no-op, not a ValueError.
        clone.attach_cache(clone.cache)
        # The copied entries came along and still serve the clone.
        hits_before = clone.cache.scores.stats.hits
        clone.score_items(tiny_dataset.evaluation_users()[0])
        assert clone.cache.scores.stats.hits == hits_before + 1

    def test_dead_owner_releases_cache(self, tiny_dataset, trained_fism):
        cache = ServingCache(capacity=16)
        sccf_a = SCCF(
            trained_fism,
            SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2, seed=3),
            cache=cache,
        )
        del sccf_a
        reborn = SCCF(
            trained_fism,
            SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2, seed=3),
            cache=cache,
        )
        assert reborn.cache is cache

    def test_explicit_cache_instance(self, tiny_dataset, trained_fism):
        cache = ServingCache(capacity=16)
        sccf = SCCF(
            trained_fism,
            SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2, seed=3),
            cache=cache,
        ).fit(tiny_dataset, fit_ui_model=False)
        sccf.score_items(tiny_dataset.evaluation_users()[0])
        assert sccf.cache is cache
        assert cache.stats().misses > 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SCCFConfig(cache_capacity=-1)

    def test_explicit_histories_never_cross_validate(self, cached_sccf, tiny_dataset):
        """Two different explicit histories for one user get distinct scores.

        Regression: a (length, last-item) fingerprint let ``[3, 5]`` serve
        ``[4, 5]``'s cached scores through the public ``score_items`` API.
        """

        user = tiny_dataset.evaluation_users()[0]
        first = cached_sccf.score_items(user, history=[3, 5])
        second = cached_sccf.score_items(user, history=[4, 5])
        expected = SCCF(
            cached_sccf.ui_model,
            SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2, seed=3),
        )
        # Compare against a cacheless twin sharing the fitted components.
        expected.neighborhood = cached_sccf.neighborhood
        expected.merger = cached_sccf.merger
        expected.num_users, expected.num_items = cached_sccf.num_users, cached_sccf.num_items
        expected._user_histories = cached_sccf._user_histories
        expected._fitted = True
        np.testing.assert_array_equal(second, expected.score_items(user, history=[4, 5]))
        assert not np.array_equal(first, second)

    def test_explicit_embeddings_never_cross_validate(self, cached_sccf, tiny_dataset, rng):
        """Two different explicit query embeddings get distinct neighbor votes.

        Regression: the neighbors-layer token ignored caller-supplied
        ``user_embeddings``, so a second query for the same user was served
        the first query's neighborhood.
        """

        component = cached_sccf.neighborhood
        user = tiny_dataset.evaluation_users()[0]
        e1 = component.user_embedding(user)[None, :]
        e2 = rng.normal(size=e1.shape)
        component.score_for_users([user], user_embeddings=e1)  # primes nothing cacheable
        second = component.score_for_users([user], user_embeddings=e2)
        uncached = UserNeighborhoodComponent(
            num_neighbors=component.num_neighbors, recency_window=component.recency_window
        )
        uncached.__dict__.update({**component.__dict__, "cache": None})
        np.testing.assert_array_equal(
            second, uncached.score_for_users([user], user_embeddings=e2)
        )

    def test_lru_bound_respected_end_to_end(self, tiny_dataset, trained_fism):
        sccf = SCCF(
            trained_fism,
            SCCFConfig(
                num_neighbors=10, candidate_list_size=30, merger_epochs=2,
                cache_capacity=4, seed=3,
            ),
        ).fit(tiny_dataset, fit_ui_model=False)
        sccf.score_items_batch(list(range(12)))
        for layer in sccf.cache.layers:
            assert len(layer) <= 4
        assert sccf.cache.scores.stats.evictions >= 8


# --------------------------------------------------------------------- #
# frozen merger inference
# --------------------------------------------------------------------- #
class TestFrozenMerger:
    def _example_features(self, sccf, dataset):
        for user in range(dataset.num_users):
            features = sccf._candidate_features(user, dataset.train.user_sequence(user))
            if features is not None:
                return features
        raise AssertionError("no user with candidates")

    def test_fit_freezes_and_matches_tensor_path(self, fitted_sccf, tiny_dataset):
        merger = fitted_sccf.merger
        assert merger._frozen is not None  # fit froze the weights
        features = self._example_features(fitted_sccf, tiny_dataset)
        frozen_out = merger.predict(features)
        with nn.no_grad():
            tensor_out = merger._forward_tensor(nn.Tensor(features.features)).data
        np.testing.assert_allclose(frozen_out, tensor_out, rtol=1e-12, atol=1e-12)

    def test_thaw_falls_back_to_tensor_path(self, fitted_sccf, tiny_dataset):
        merger = fitted_sccf.merger
        features = self._example_features(fitted_sccf, tiny_dataset)
        frozen_out = merger.predict(features)
        generation = merger.generation
        merger.thaw()
        assert merger._frozen is None
        # thaw is a documented post-hand-mutation hook, so it must advance
        # the generation (a cache hit would short-circuit the lazy re-freeze)
        assert merger.generation > generation
        # predict lazily re-freezes; the outputs must be unchanged
        np.testing.assert_allclose(merger.predict(features), frozen_out, rtol=1e-12)

    def test_lazy_freeze_without_fit(self, rng):
        merger = IntegratingMLP(embedding_dim=6, hidden_dims=(8,), seed=0)
        candidates = np.arange(5)
        features = merger.build_features(
            user_id=0,
            user_embedding=rng.normal(size=6),
            item_embeddings=rng.normal(size=(10, 6)),
            candidate_items=candidates,
            ui_scores=rng.normal(size=10),
            uu_scores=rng.normal(size=10),
        )
        generation = merger.generation
        out = merger.predict(features)
        assert merger._frozen is not None
        assert out.shape == (5,)
        # The lazy snapshot reflects unchanged weights: no mid-request
        # generation bump (it would store fresh cache entries stale).
        assert merger.generation == generation

    def test_frozen_sigmoid_matches_tensor_clip(self, rng):
        """The frozen sigmoid must mirror Tensor.sigmoid's overflow clip exactly."""

        merger = IntegratingMLP(embedding_dim=6, hidden_dims=(8,), seed=0)
        sequential = merger.network.network
        for name, module in list(sequential._modules.items()):
            if isinstance(module, nn.ReLU):
                sequential._modules[name] = nn.Sigmoid()
                break
        assert merger.freeze() is True
        features = merger.build_features(
            user_id=0,
            user_embedding=rng.normal(size=6) * 1e4,  # drive pre-activations far past the clip
            item_embeddings=rng.normal(size=(10, 6)) * 1e4,
            candidate_items=np.arange(6),
            ui_scores=rng.normal(size=10),
            uu_scores=rng.normal(size=10),
        )
        with nn.no_grad():
            expected = merger._forward_tensor(nn.Tensor(features.features)).data
        frozen = merger._forward_frozen(features.features)
        assert np.all(np.isfinite(frozen))
        np.testing.assert_allclose(frozen, expected, rtol=1e-12, atol=1e-12)

    def test_unfreezable_network_falls_back(self, rng):
        merger = IntegratingMLP(embedding_dim=6, hidden_dims=(8,), seed=0)
        # Swap an activation for a module the frozen path doesn't know.
        sequential = merger.network.network
        for name, module in list(sequential._modules.items()):
            if isinstance(module, nn.ReLU):
                sequential._modules[name] = nn.LayerNorm(8)
                break
        assert merger.freeze() is False
        assert merger._frozen is None
        features = merger.build_features(
            user_id=0,
            user_embedding=rng.normal(size=6),
            item_embeddings=rng.normal(size=(10, 6)),
            candidate_items=np.arange(4),
            ui_scores=rng.normal(size=10),
            uu_scores=rng.normal(size=10),
        )
        with nn.no_grad():
            expected = merger._forward_tensor(nn.Tensor(features.features)).data
        np.testing.assert_allclose(merger.predict(features), expected, rtol=1e-12)
        # The failure is remembered: repeated predicts neither retry the
        # snapshot walk nor bump the generation (which would permanently
        # invalidate every fused cache entry).
        generation = merger.generation
        merger.predict(features)
        merger.predict(features)
        assert merger.generation == generation
        # thaw() clears the memory so a repaired network can freeze again.
        merger.thaw()
        assert merger._freeze_failed is False


# --------------------------------------------------------------------- #
# recommend latency window (bugfix) and the maintenance scheduler
# --------------------------------------------------------------------- #
class TestRecommendLatency:
    def test_recommend_latency_tracked_separately(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        assert server.average_recommend_latency_ms() is None
        user = tiny_dataset.evaluation_users()[0]
        server.observe(user, 1)
        # Ingestion alone must not fabricate a serving latency.
        assert server.average_recommend_latency_ms() is None
        server.recommend(user, k=5)
        average = server.average_recommend_latency_ms()
        assert average is not None and average > 0.0
        # ... and serving must not leak into the ingestion window.
        assert len(server.latencies) == 1

    def test_recommend_window_bounded(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset, latency_window=4)
        user = tiny_dataset.evaluation_users()[0]
        for _ in range(10):
            server.recommend(user, k=3)
        assert len(server.recommend_latencies) == 4

    def test_k_zero_counts_a_sample(self, fitted_sccf, tiny_dataset):
        # A degenerate request is still admitted work: it validates, returns
        # [], and records a latency sample (under the async front-end that
        # sample carries real queue wait — dropping it would flatter p50/p99).
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        assert server.recommend(tiny_dataset.evaluation_users()[0], k=0) == []
        assert server.average_recommend_latency_ms() is not None
        assert len(server.recommend_latencies) == 1


class TestMaintenanceScheduler:
    @pytest.fixture()
    def ivf_server(self, tiny_dataset, trained_fism):
        sccf = SCCF(
            trained_fism,
            SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2, seed=3),
            neighbor_index=IVFIndex(num_cells=4, n_probe=2),
        ).fit(tiny_dataset, fit_ui_model=False)
        return RealTimeServer(sccf, tiny_dataset, maintenance_every=5)

    def test_validation(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        with pytest.raises(ValueError):
            MaintenanceScheduler(server, every_events=0)
        scheduler = MaintenanceScheduler(server, every_events=3)
        with pytest.raises(ValueError):
            scheduler.notify(-1)

    def test_triggers_every_n_events(self, ivf_server, tiny_dataset):
        scheduler = ivf_server.scheduler
        assert scheduler is not None
        users = tiny_dataset.evaluation_users()
        for step in range(4):
            ivf_server.observe(users[step % len(users)], 1)
        assert list(scheduler.reports) == []
        ivf_server.observe(users[0], 2)  # 5th event
        assert len(scheduler.reports) == 1
        assert scheduler.reports[0].supported
        assert scheduler.events_since_maintenance == 0

    def test_batch_events_counted(self, ivf_server, tiny_dataset):
        users = tiny_dataset.evaluation_users()
        events = [(users[i % len(users)], 1) for i in range(5)]
        ivf_server.observe_batch(events)
        assert len(ivf_server.scheduler.reports) == 1

    def test_manual_scheduler_counts(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        scheduler = MaintenanceScheduler(server, every_events=3)
        assert scheduler.notify(2) is None
        report = scheduler.notify(1)
        assert report is not None
        # brute-force index: maintenance has no surface, but the pass ran
        assert report.supported is False
        assert list(scheduler.reports) == [report]
        assert scheduler.passes_run == 1

    def test_report_window_bounded(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        scheduler = MaintenanceScheduler(server, every_events=1, report_window=3)
        for _ in range(7):
            scheduler.notify(1)
        assert len(scheduler.reports) == 3
        assert scheduler.passes_run == 7

    def test_server_without_scheduler(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        assert server.scheduler is None


class TestWarmCachePrefill:
    """Post-retrain cache prefill: head users are re-warmed off the hot path."""

    @pytest.fixture()
    def cached_server(self, tiny_dataset, trained_fism):
        sccf = SCCF(
            trained_fism,
            SCCFConfig(
                num_neighbors=10,
                candidate_list_size=30,
                merger_epochs=2,
                cache_capacity=64,
                seed=3,
            ),
            neighbor_index=IVFIndex(num_cells=4, n_probe=4, rng=np.random.default_rng(0)),
        ).fit(tiny_dataset, fit_ui_model=False)
        return RealTimeServer(sccf, tiny_dataset)

    def test_prefill_picks_most_frequent_recent_users(self, cached_server):
        for user, asks in ((0, 3), (1, 2), (2, 1)):
            for _ in range(asks):
                cached_server.recommend(user, k=5)
        assert cached_server.prefill_cache(2) == [0, 1]

    def test_prefilled_user_is_served_from_cache_after_retrain(self, cached_server):
        sccf = cached_server.sccf
        cached_server.recommend(3, k=5)
        cached_server.recommend(3, k=5)
        # A retrain bumps the epoch: every epoch-validated entry is stale.
        sccf.neighborhood.index.retrain(num_iterations=2)
        warmed = cached_server.prefill_cache(1)
        assert warmed == [3]
        hits_before = sccf.cache.scores.stats.hits
        result = cached_server.recommend(3, k=5)
        assert sccf.cache.scores.stats.hits == hits_before + 1
        # ... and the warmed entry serves exactly what a cold compute would.
        sccf.cache.clear()
        assert cached_server.recommend(3, k=5) == result

    def test_maintain_prefills_after_retrain(self, cached_server, trained_fism):
        cached_server.recommend(0, k=5)
        cached_server.recommend(1, k=5)
        # skew the pool the way a drifted stream would, forcing a retrain
        rng = np.random.default_rng(9)
        drift = rng.normal(size=(300, trained_fism.embedding_dim))
        drift[:, 0] += 4.0
        cached_server.sccf.neighborhood.index.add(drift)
        report = cached_server.maintain(imbalance_threshold=1.5, prefill_users=2)
        assert report.retrained
        assert report.prefilled_users == 2
        # without a retrain nothing is prefetched (threshold far above skew)
        assert (
            cached_server.maintain(imbalance_threshold=50.0, prefill_users=2).prefilled_users
            == 0
        )

    def test_prefill_without_cache_or_activity(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        server.recommend(0, k=3)
        assert server.prefill_cache(4) == []  # no cache attached
        cached = SCCF(
            fitted_sccf.ui_model,
            SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=2,
                       cache_capacity=8, seed=3),
        ).fit(tiny_dataset, fit_ui_model=False)
        idle = RealTimeServer(cached, tiny_dataset)
        assert idle.prefill_cache(4) == []  # no recorded activity
        with pytest.raises(ValueError):
            idle.prefill_cache(0)

    def test_activity_window_bounds_and_validation(self, fitted_sccf, tiny_dataset):
        with pytest.raises(ValueError):
            RealTimeServer(fitted_sccf, tiny_dataset, activity_window=0)
        server = RealTimeServer(fitted_sccf, tiny_dataset, activity_window=3)
        for user in (0, 0, 0, 1, 1, 2):
            server.observe(user, 1)
        # only the last three events are remembered: 1, 1, 2
        assert list(server._recent_active) == [1, 1, 2]

    def test_scheduler_prefill_knob(self, cached_server):
        with pytest.raises(ValueError):
            MaintenanceScheduler(cached_server, every_events=1, prefill_users=0)
        scheduler = MaintenanceScheduler(cached_server, every_events=1, prefill_users=3)
        assert scheduler.prefill_users == 3
        report = scheduler.notify(1)
        assert report is not None and report.prefilled_users == 0  # balanced: no retrain
