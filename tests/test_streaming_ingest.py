"""Micro-batched streaming ingestion: EventBuffer, observe_batch, cold-start growth.

Covers the streaming ingestion subsystem plus the serving-path regression
fixes that shipped with it:

* ``recommend`` no longer pads results with non-candidate placeholder items
  (the finite ``_NEG_INF`` sentinel used to slip past the ``isfinite`` filter)
  and returns ``[]`` for ``k <= 0`` instead of wrapping ``argpartition``;
* ``observe`` rejects negative user ids instead of silently creating state;
* the latency log is a bounded window, not an unbounded list;
* ``observe_batch`` over a shuffled event stream leaves histories, embeddings
  and recommendations bit-identical to sequential ``observe`` calls;
* a brand-new streamed user grows the neighborhood pool and becomes
  retrievable as a neighbor (cold start), instead of being silently excluded
  from the index.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SCCF, EventBuffer, RealTimeServer, SCCFConfig


def _fresh_server(tiny_dataset, trained_fism) -> RealTimeServer:
    """A server over its own SCCF instance, so mutations don't leak across tests."""

    sccf = SCCF(
        trained_fism,
        SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=3, seed=3),
    )
    sccf.fit(tiny_dataset, fit_ui_model=False)
    return RealTimeServer(sccf, tiny_dataset)


def _event_stream(tiny_dataset, num_events: int = 36, seed: int = 11):
    """A shuffled multi-user stream: users interleave, items are random."""

    rng = np.random.default_rng(seed)
    users = tiny_dataset.evaluation_users()[:6]
    return [
        (int(rng.choice(users)), int(rng.integers(0, tiny_dataset.num_items)))
        for _ in range(num_events)
    ]


class TestRecommendFixes:
    def test_no_padding_with_unscored_items(self, fitted_sccf, tiny_dataset):
        """In "sccf" mode, items the merger never scored must not fill the list."""

        server = RealTimeServer(fitted_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        recommendations = server.recommend(user, k=tiny_dataset.num_items)
        assert recommendations  # some candidates exist
        scores = fitted_sccf.score_items(user, history=server.history(user))
        for item in recommendations:
            assert scores[item] > -1e12  # strictly above the sentinel

    def test_k_nonpositive_returns_empty(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        assert server.recommend(user, k=0) == []
        assert server.recommend(user, k=-3) == []


class TestObserveValidation:
    def test_negative_user_id_rejected(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        with pytest.raises(ValueError):
            server.observe(-1, 0)
        assert server.history(-1) == []  # no state was silently created

    def test_batch_validates_before_ingesting(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        before = server.history(user)
        with pytest.raises(ValueError):
            server.observe_batch([(user, 0), (user, tiny_dataset.num_items + 5)])
        assert server.history(user) == before  # bad batch left no partial state


class TestLatencyWindow:
    def test_latencies_bounded(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset, latency_window=4)
        user = tiny_dataset.evaluation_users()[0]
        for _ in range(7):
            server.observe(user, 0)
        assert len(server.latencies) == 4
        average = server.average_latency()
        assert average is not None and average.total_ms >= 0.0

    def test_invalid_window(self, fitted_sccf, tiny_dataset):
        with pytest.raises(ValueError):
            RealTimeServer(fitted_sccf, tiny_dataset, latency_window=0)

    def test_average_latency_event_weighted(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        breakdown = server.observe_batch(_event_stream(tiny_dataset, num_events=8))
        assert breakdown is not None and breakdown.num_events == 8
        average = server.average_latency()
        assert average.inferring_ms == pytest.approx(breakdown.inferring_ms / 8)
        assert average.identifying_ms == pytest.approx(breakdown.identifying_ms / 8)


class TestEventBuffer:
    def test_invalid_flush_size(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        with pytest.raises(ValueError):
            EventBuffer(server, flush_size=0)

    def test_auto_flush_at_flush_size(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        buffer = EventBuffer(server, flush_size=3)
        user = tiny_dataset.evaluation_users()[0]
        assert buffer.push(user, 0) is None
        assert buffer.push(user, 1) is None
        breakdown = buffer.push(user, 2)
        assert breakdown is not None and breakdown.num_events == 3
        assert len(buffer) == 0
        assert server.history(user)[-3:] == [0, 1, 2]

    def test_push_validates_eagerly(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        buffer = EventBuffer(server, flush_size=10)
        with pytest.raises(ValueError):
            buffer.push(-1, 0)
        with pytest.raises(ValueError):
            buffer.push(0, tiny_dataset.num_items)
        assert len(buffer) == 0

    def test_flush_empty_returns_none(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        assert EventBuffer(server).flush() is None

    def test_context_manager_flushes_tail(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        with EventBuffer(server, flush_size=100) as buffer:
            buffer.push(user, 4)
            buffer.push(user, 5)
        assert len(buffer) == 0
        assert server.history(user)[-2:] == [4, 5]

    def test_failed_flush_restores_events(self, tiny_dataset, trained_fism):
        # A failing observe_batch (worker outage under failure_policy="raise",
        # a propagating maintenance error) must put the micro-batch back so a
        # retrying caller loses nothing — the old code swapped the list out
        # first and silently dropped it.
        server = _fresh_server(tiny_dataset, trained_fism)
        user = tiny_dataset.evaluation_users()[0]
        buffer = EventBuffer(server, flush_size=10)
        buffer.push(user, 0)
        buffer.push(user, 1)

        original = server.observe_batch

        def explode(events, request_starts=None):
            raise RuntimeError("all shards down")

        server.observe_batch = explode
        with pytest.raises(RuntimeError, match="all shards down"):
            buffer.flush()
        # nothing lost, order preserved, later pushes queue *behind* the
        # restored batch
        assert buffer.pending == [(user, 0), (user, 1)]
        buffer.push(user, 2)
        assert buffer.pending == [(user, 0), (user, 1), (user, 2)]

        server.observe_batch = original
        breakdown = buffer.flush()
        assert breakdown is not None and breakdown.num_events == 3
        assert len(buffer) == 0
        assert server.history(user)[-3:] == [0, 1, 2]


class TestObserveBatchParity:
    def test_batch_matches_sequential_bit_exact(self, tiny_dataset, trained_fism):
        """A shuffled stream through EventBuffer == the same events one at a time."""

        sequential = _fresh_server(tiny_dataset, trained_fism)
        batched = _fresh_server(tiny_dataset, trained_fism)
        events = _event_stream(tiny_dataset)
        touched = sorted({user for user, _ in events})

        # both servers start from identical state (deterministic fit)
        for user in touched:
            assert sequential.recommend(user, k=10) == batched.recommend(user, k=10)

        for user, item in events:
            sequential.observe(user, item)
        with EventBuffer(batched, flush_size=7) as buffer:  # several partial flushes
            for user, item in events:
                buffer.push(user, item)

        for user in touched:
            assert sequential.history(user) == batched.history(user)
        assert np.array_equal(
            sequential.sccf.neighborhood._user_embeddings,
            batched.sccf.neighborhood._user_embeddings,
        )
        assert np.array_equal(
            sequential.sccf.neighborhood.index._normalized,
            batched.sccf.neighborhood.index._normalized,
        )
        for user in touched:
            assert sequential.recommend(user, k=10) == batched.recommend(user, k=10)

    def test_empty_batch_is_a_noop(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        assert server.observe_batch([]) is None
        assert len(server.latencies) == 0


class TestColdStartGrowth:
    def test_streamed_new_user_joins_neighborhood(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        neighborhood = server.sccf.neighborhood
        base_users = neighborhood.num_users
        other = tiny_dataset.evaluation_users()[1]
        new_user = tiny_dataset.num_users + 3  # non-contiguous id: gap users are zero-filled

        # Give the new user the exact history of `other`, event by event.
        for item in tiny_dataset.train.user_sequence(other):
            server.observe(new_user, item)

        assert neighborhood.num_users == new_user + 1
        assert neighborhood.index.size == new_user + 1
        assert neighborhood.recent_items(new_user)  # votes recent items to neighbors
        ids, sims = neighborhood.neighbors(
            neighborhood.user_embedding(other), exclude_user=other
        )
        assert new_user in ids  # retrievable as a neighbor after index growth
        # gap users (zero embeddings) never carry positive similarity, so they
        # can never vote items into anyone's candidates
        gap_users = set(range(base_users, new_user))
        positive = {int(i) for i, s in zip(ids, sims) if s > 0}
        assert not gap_users & positive

    def test_scoring_still_works_after_growth(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        other = tiny_dataset.evaluation_users()[1]
        new_user = tiny_dataset.num_users
        server.observe_batch(
            [(new_user, item) for item in tiny_dataset.train.user_sequence(other)]
        )
        # UU scoring with the grown pool (exercises the CSR overlay for new ids)
        scores = server.sccf.neighborhood.uu_scores(
            server.sccf.neighborhood.user_embedding(other), exclude_user=other
        )
        assert scores.shape == (tiny_dataset.num_items,)
        # the full serving path works for both old and new users
        assert isinstance(server.recommend(other, k=5), list)
        assert isinstance(server.recommend(new_user, k=5), list)

    def test_growth_capped_against_huge_ids(self, tiny_dataset, trained_fism):
        """A single malformed/hostile event must not allocate an unbounded block."""

        server = _fresh_server(tiny_dataset, trained_fism)
        neighborhood = server.sccf.neighborhood
        huge = neighborhood.num_users + neighborhood.max_user_growth
        with pytest.raises(ValueError):
            server.observe(huge, 0)
        assert server.history(huge) == []  # rejected before any state was touched
        with pytest.raises(ValueError):
            EventBuffer(server).push(huge, 0)
        with pytest.raises(ValueError):
            neighborhood.add_users([huge], trained_fism, [[0]])
        # just inside the cap is accepted
        server.observe(huge - 1, 0)
        assert neighborhood.num_users == huge

    def test_batch_mixing_new_and_known_users(self, tiny_dataset, trained_fism):
        server = _fresh_server(tiny_dataset, trained_fism)
        known = tiny_dataset.evaluation_users()[0]
        new_user = tiny_dataset.num_users + 1
        breakdown = server.observe_batch(
            [(known, 0), (new_user, 1), (known, 2), (new_user, 3)]
        )
        assert breakdown is not None and breakdown.num_events == 4
        assert server.history(known)[-2:] == [0, 2]
        assert server.history(new_user) == [1, 3]
        assert server.sccf.neighborhood.num_users == new_user + 1
