"""Crash-safe snapshot persistence: format, atomicity, faults, serve parity.

The contract under test (ROADMAP "blue/green index versioning + snapshot
persistence"): ``save_snapshot`` writes every byte through tmp-file + fsync +
atomic rename with the manifest committed last, so a crash anywhere mid-write
leaves either the previous committed generation or the new one — never a
loadable-but-corrupt directory; ``load_snapshot`` cold-starts a replica that
serves **bit-identical** recommendations.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.ann import BruteForceIndex, IVFIndex, ProcessShardedIndex, ShardedIndex, restore_index
from repro.core import SCCF, RealTimeServer, SCCFConfig
from repro.core.merger import IntegratingMLP
from repro.core.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    SnapshotNotFoundError,
    list_generations,
    previous_generation,
    read_snapshot,
    write_snapshot,
)
from repro.testing.faults import FaultInjector, InjectedFault


def _state(tag: int) -> dict:
    return {
        "meta": {"tag": tag, "nested": {"flag": True}},
        "arrays": {"rows": np.arange(6, dtype=np.float64) + tag, "ids": np.arange(6)},
    }


class TestWriteRead:
    def test_round_trip_preserves_tree_and_arrays(self, tmp_path):
        generation = write_snapshot(tmp_path, _state(3), epoch=7)
        payload = read_snapshot(generation)
        assert payload.epoch == 7
        assert payload.generation == 1
        assert payload.state["meta"] == {"tag": 3, "nested": {"flag": True}}
        np.testing.assert_array_equal(
            payload.state["arrays"]["rows"], np.arange(6, dtype=np.float64) + 3
        )
        assert payload.state["arrays"]["rows"].dtype == np.float64

    def test_root_resolves_newest_committed_generation(self, tmp_path):
        write_snapshot(tmp_path, _state(1), epoch=1)
        write_snapshot(tmp_path, _state(2), epoch=2)
        payload = read_snapshot(tmp_path)
        assert payload.epoch == 2
        assert payload.path.name == "gen-000002"

    def test_keep_prunes_oldest(self, tmp_path):
        for tag in range(4):
            write_snapshot(tmp_path, _state(tag), epoch=tag, keep=2)
        names = [path.name for path in list_generations(tmp_path)]
        assert names == ["gen-000003", "gen-000004"]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            write_snapshot(tmp_path, _state(0), keep=0)

    def test_empty_root_is_a_clear_error(self, tmp_path):
        with pytest.raises(SnapshotNotFoundError, match="no committed snapshot generation"):
            read_snapshot(tmp_path)

    def test_missing_root_is_a_named_error(self, tmp_path):
        with pytest.raises(SnapshotNotFoundError, match="does not exist"):
            read_snapshot(tmp_path / "never-created")
        # The named error is still a SnapshotError: existing handlers keep working.
        assert issubclass(SnapshotNotFoundError, SnapshotError)

    def test_current_pointing_at_pruned_generation_is_a_named_error(self, tmp_path):
        write_snapshot(tmp_path, _state(1), epoch=1)
        generation = write_snapshot(tmp_path, _state(2), epoch=2)
        # The CURRENT-named generation vanishes (over-eager cleanup, lost
        # volume): the loader must name the problem, not KeyError or
        # FileNotFoundError its way through the manifest walk.
        shutil.rmtree(generation)
        with pytest.raises(SnapshotNotFoundError, match="no longer exists"):
            read_snapshot(tmp_path)

    def test_wal_seq_round_trips_through_manifest(self, tmp_path):
        generation = write_snapshot(tmp_path, _state(0), wal_seq=41)
        assert read_snapshot(generation).wal_seq == 41
        # Pre-WAL snapshots (no manifest key) default to 0: replay everything.
        older = write_snapshot(tmp_path, _state(1))
        assert read_snapshot(older).wal_seq == 0

    def test_future_format_version_rejected(self, tmp_path):
        generation = write_snapshot(tmp_path, _state(0))
        manifest_path = generation / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format"):
            read_snapshot(generation)

    def test_missing_segment_rejected(self, tmp_path):
        generation = write_snapshot(tmp_path, _state(0))
        (generation / "arrays.rows.npy").unlink()
        with pytest.raises(SnapshotError, match="missing"):
            read_snapshot(generation)

    def test_duplicate_array_paths_rejected(self, tmp_path):
        # Key "a.b" at the root collides with nested {"a": {"b": array}}.
        state = {"a.b": np.arange(2), "a": {"b": np.arange(2)}}
        with pytest.raises(SnapshotError, match="duplicate"):
            write_snapshot(tmp_path, state)

    def test_non_string_keys_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="key"):
            write_snapshot(tmp_path, {"arrays": {3: np.arange(2)}})

    def test_previous_generation_walks_backwards(self, tmp_path):
        write_snapshot(tmp_path, _state(1))
        newest = write_snapshot(tmp_path, _state(2))
        prev = previous_generation(tmp_path, newest)
        assert prev is not None and prev.name == "gen-000001"
        assert previous_generation(tmp_path, prev) is None


class TestCrashFaults:
    """Each injected fault must fail loudly and spare the previous generation."""

    def test_crash_before_manifest_commit_never_publishes(self, tmp_path):
        write_snapshot(tmp_path, _state(1), epoch=1)
        FaultInjector().fail_snapshot_commit(filename="manifest.json")
        with pytest.raises(InjectedFault):
            write_snapshot(tmp_path, _state(2), epoch=2)
        # The root still resolves the previous committed generation...
        assert read_snapshot(tmp_path).epoch == 1
        # ...and the interrupted directory is rejected by name with a clear error.
        interrupted = tmp_path / "gen-000002"
        assert interrupted.is_dir()
        with pytest.raises(SnapshotError, match="no manifest"):
            read_snapshot(interrupted)

    def test_crash_on_segment_commit_never_publishes(self, tmp_path):
        write_snapshot(tmp_path, _state(1), epoch=1)
        FaultInjector().fail_snapshot_commit(filename="arrays.rows.npy")
        with pytest.raises(InjectedFault):
            write_snapshot(tmp_path, _state(2), epoch=2)
        assert read_snapshot(tmp_path).epoch == 1

    def test_write_after_interrupted_write_recovers(self, tmp_path):
        write_snapshot(tmp_path, _state(1), epoch=1)
        FaultInjector().fail_snapshot_commit(filename="manifest.json")
        with pytest.raises(InjectedFault):
            write_snapshot(tmp_path, _state(2), epoch=2)
        write_snapshot(tmp_path, _state(3), epoch=3)  # patch removed itself
        assert read_snapshot(tmp_path).epoch == 3

    def test_truncated_segment_rejected_previous_loads(self, tmp_path):
        write_snapshot(tmp_path, _state(1), epoch=1)
        newest = write_snapshot(tmp_path, _state(2), epoch=2)
        FaultInjector().truncate_snapshot_file(newest, "arrays.rows.npy", keep_bytes=16)
        with pytest.raises(SnapshotError, match="truncated"):
            read_snapshot(newest)
        prev = previous_generation(tmp_path, newest)
        assert prev is not None and read_snapshot(prev).epoch == 1

    def test_corrupt_checksum_rejected_previous_loads(self, tmp_path):
        write_snapshot(tmp_path, _state(1), epoch=1)
        newest = write_snapshot(tmp_path, _state(2), epoch=2)
        FaultInjector().corrupt_snapshot_checksum(newest, "arrays.rows.npy")
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(newest)
        prev = previous_generation(tmp_path, newest)
        assert prev is not None and read_snapshot(prev).epoch == 1


def _search_parity(saved, restored, queries, k=10):
    for before, after in zip(saved.search_batch(queries, k), restored.search_batch(queries, k)):
        np.testing.assert_array_equal(before[0], after[0])
        np.testing.assert_array_equal(before[1], after[1])


class TestIndexBackends:
    """snapshot_state → restore_index is bit-identical for every backend."""

    def test_brute_force_round_trip(self, rng):
        vectors = rng.normal(size=(40, 8))
        index = BruteForceIndex().build(vectors)
        restored = restore_index(index.snapshot_state())
        assert restored.epoch == index.epoch
        _search_parity(index, restored, rng.normal(size=(5, 8)))

    def test_ivf_round_trip_including_rng_stream(self, rng):
        index = IVFIndex(num_cells=4, n_probe=2, rng=np.random.default_rng(11)).build(
            rng.normal(size=(60, 8))
        )
        index.add(rng.normal(size=(20, 8)) + 3.0)  # skew some cells
        restored = restore_index(index.snapshot_state())
        assert restored.epoch == index.epoch
        queries = rng.normal(size=(6, 8))
        _search_parity(index, restored, queries)
        # The saved RNG bit-generator state makes even a *future retrain*
        # bit-identical — the replica and the original stay interchangeable.
        index.retrain()
        restored.retrain()
        _search_parity(index, restored, queries)

    def test_thread_sharded_round_trip(self, rng):
        vectors = rng.normal(size=(50, 8))
        index = ShardedIndex(num_shards=3).build(vectors)
        restored = restore_index(index.snapshot_state())
        assert restored.epoch == index.epoch
        _search_parity(index, restored, rng.normal(size=(5, 8)))

    def test_process_sharded_round_trip(self, rng):
        vectors = rng.normal(size=(24, 8))
        with ProcessShardedIndex(num_shards=2, initial_capacity=16).build(vectors) as index:
            state = index.snapshot_state()
            queries = rng.normal(size=(4, 8))
            expected = index.search_batch(queries, 5)
        with restore_index(state) as restored:
            assert restored.epoch == int(state["meta"]["epoch"])
            for before, after in zip(expected, restored.search_batch(queries, 5)):
                np.testing.assert_array_equal(before[0], after[0])
                np.testing.assert_array_equal(before[1], after[1])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown index snapshot kind"):
            restore_index({"kind": "faiss"})


class TestMergerRoundTrip:
    def test_weights_and_frozen_predict_state_survive(self, fitted_sccf, tiny_dataset):
        merger = fitted_sccf.merger
        restored = IntegratingMLP.restore_state(merger.snapshot_state())
        assert restored.generation == merger.generation
        user = tiny_dataset.evaluation_users()[0]
        history = tiny_dataset.train.user_sequence(user)
        features = fitted_sccf._candidate_features(user, history)
        assert features is not None
        np.testing.assert_array_equal(merger.predict(features), restored.predict(features))


class TestServerRoundTrip:
    @pytest.fixture()
    def saved_server(self, tiny_dataset, trained_fism):
        sccf = SCCF(
            trained_fism,
            SCCFConfig(
                num_neighbors=10,
                candidate_list_size=30,
                merger_epochs=2,
                cache_capacity=32,
                seed=3,
            ),
            neighbor_index=IVFIndex(num_cells=4, n_probe=2, rng=np.random.default_rng(7)),
        ).fit(tiny_dataset, fit_ui_model=False)
        server = RealTimeServer(sccf, tiny_dataset, default_deadline_ms=250.0)
        users = tiny_dataset.evaluation_users()
        for user in users[:6]:
            server.observe(user, 1)
        server.maintain(imbalance_threshold=0.5)
        server.observe(users[0], 2)
        return server

    def _fresh_sccf(self, trained_fism):
        return SCCF(
            trained_fism,
            SCCFConfig(
                num_neighbors=10,
                candidate_list_size=30,
                merger_epochs=2,
                cache_capacity=32,
                seed=3,
            ),
            neighbor_index=IVFIndex(num_cells=4, n_probe=2),
        )

    def test_save_load_serve_parity(self, saved_server, tiny_dataset, trained_fism, tmp_path):
        saved_server.save_snapshot(tmp_path)
        restored = RealTimeServer.load_snapshot(
            tmp_path, self._fresh_sccf(trained_fism), tiny_dataset
        )
        assert restored.default_deadline_ms == saved_server.default_deadline_ms
        for user in tiny_dataset.evaluation_users()[:8]:
            assert restored.history(user) == saved_server.history(user)
            assert restored.recommend(user, k=10) == saved_server.recommend(user, k=10)

    def test_snapshot_epoch_matches_index(self, saved_server, tmp_path):
        generation = saved_server.save_snapshot(tmp_path)
        payload = read_snapshot(generation)
        assert payload.epoch == saved_server.sccf.neighborhood.index.epoch

    def test_save_snapshot_rejects_nonpositive_keep_before_writing(
        self, saved_server, tmp_path
    ):
        # keep=0 would delete every generation including the one just
        # written; the server must refuse before touching disk, not after.
        with pytest.raises(ValueError, match="keep"):
            saved_server.save_snapshot(tmp_path, keep=0)
        assert not any(tmp_path.iterdir())

    def test_restored_server_keeps_streaming(self, saved_server, tiny_dataset, trained_fism, tmp_path):
        saved_server.save_snapshot(tmp_path)
        restored = RealTimeServer.load_snapshot(
            tmp_path, self._fresh_sccf(trained_fism), tiny_dataset
        )
        user = tiny_dataset.evaluation_users()[0]
        restored.observe(user, 3)
        assert restored.history(user)[-1] == 3
        assert restored.recommend(user, k=5) is not None
        # maintenance still works on the restored stack (rng state restored)
        report = restored.maintain(imbalance_threshold=0.5)
        assert report.retrained and report.shadow

    def test_overrides_replace_saved_config(self, saved_server, tiny_dataset, trained_fism, tmp_path):
        saved_server.save_snapshot(tmp_path)
        restored = RealTimeServer.load_snapshot(
            tmp_path,
            self._fresh_sccf(trained_fism),
            tiny_dataset,
            default_deadline_ms=5.0,
            maintenance_every=16,
        )
        assert restored.default_deadline_ms == 5.0
        assert restored.scheduler is not None and restored.scheduler.every_events == 16

    def test_save_refused_mid_shadow_build(self, saved_server, tmp_path):
        saved_server.observe(0, 1)
        launched = saved_server.begin_shadow_maintenance(imbalance_threshold=0.5)
        if launched is None:
            with pytest.raises(RuntimeError, match="shadow"):
                saved_server.save_snapshot(tmp_path)
            saved_server.poll_shadow_maintenance(wait=True)
        saved_server.save_snapshot(tmp_path)  # fine once published
