"""Property-based tests: cached serving is bit-identical to uncached serving.

The versioned serving cache claims *invalidation correctness*: under any
interleaving of ``observe`` / ``observe_batch`` / ``recommend`` /
``maintain`` (including cold-start users growing the pool and IVF retrains
rebuilding the whole cell partition), a server with the cache attached
returns exactly the results of a server without it.  Hypothesis drives
random op sequences against a deepcopied pair of fitted SCCF stacks and
asserts:

* every ``recommend`` answer is identical, id-for-id and order-for-order;
* final catalog scores (``score_items``, the batch-of-one serving shape) are
  bit-identical for every sampled user;
* final neighborhood embedding matrices are bit-identical;
* every cache layer respects its LRU capacity bound at every step;
* per-user version counters and the index epoch never decrease.

The base model is FISM, whose pooled inference is exactly batch-shape
independent, so "bit-identical" means ``np.array_equal`` — no tolerance.
Sequences run on a deliberately *small* cache capacity in one test so
evictions interleave with invalidations.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ann import IVFIndex
from repro.core import SCCF, RealTimeServer, SCCFConfig, ServingCache
from repro.data import load_preset
from repro.models import FISM


@pytest.fixture(scope="module")
def base_stack():
    """One fitted SCCF (brute-force index) deepcopied per hypothesis example."""

    dataset = load_preset("tiny")
    model = FISM(embedding_dim=12, num_epochs=1, seed=7).fit(dataset)
    sccf = SCCF(
        model,
        SCCFConfig(num_neighbors=8, candidate_list_size=20, merger_epochs=2, seed=7),
    ).fit(dataset, fit_ui_model=False)
    return sccf, dataset


@pytest.fixture(scope="module")
def ivf_stack():
    """Same, backed by a small IVF index so ``maintain`` can actually retrain."""

    dataset = load_preset("tiny")
    model = FISM(embedding_dim=12, num_epochs=1, seed=9).fit(dataset)
    sccf = SCCF(
        model,
        SCCFConfig(num_neighbors=8, candidate_list_size=20, merger_epochs=2, seed=9),
        neighbor_index=IVFIndex(num_cells=4, n_probe=2),
    ).fit(dataset, fit_ui_model=False)
    return sccf, dataset


def _op_sequences(num_users: int, num_items: int, with_maintain: bool):
    ops = [
        st.tuples(
            st.just("observe"),
            st.integers(0, num_users + 4),  # ids beyond the pool exercise cold start
            st.integers(0, num_items - 1),
        ),
        st.tuples(
            st.just("recommend"),
            st.integers(0, num_users + 4),
            st.integers(1, 12),
        ),
        st.tuples(st.just("batch"), st.integers(0, 2**31 - 1), st.integers(2, 6)),
    ]
    if with_maintain:
        ops.append(st.tuples(st.just("maintain")))
    return st.lists(st.one_of(ops), min_size=1, max_size=25)


def _replay(stack, ops, capacity: int):
    """Run ``ops`` against a cached and an uncached copy; assert parity throughout."""

    base, dataset = stack
    plain = copy.deepcopy(base)
    cached = copy.deepcopy(base).attach_cache(ServingCache(capacity))
    servers = (RealTimeServer(plain, dataset), RealTimeServer(cached, dataset))

    last_versions: dict = {}
    last_epoch = cached.neighborhood.index.epoch
    for op in ops:
        if op[0] == "observe":
            user = min(op[1], plain.neighborhood.num_users + 4)
            for server in servers:
                server.observe(user, op[2])
        elif op[0] == "recommend":
            results = [server.recommend(op[1], k=op[2]) for server in servers]
            assert results[0] == results[1], f"recommend diverged on {op}"
        elif op[0] == "batch":
            rng = np.random.default_rng(op[1])
            events = [
                (int(rng.integers(0, plain.neighborhood.num_users)),
                 int(rng.integers(0, dataset.num_items)))
                for _ in range(op[2])
            ]
            for server in servers:
                server.observe_batch(events)
        else:
            reports = [server.maintain() for server in servers]
            assert reports[0].retrained == reports[1].retrained

        # LRU bounds hold at every step, not just at the end.
        for layer in cached.cache.layers:
            assert len(layer) <= capacity
        # Version counters and the epoch are monotone.
        epoch = cached.neighborhood.index.epoch
        assert epoch >= last_epoch
        last_epoch = epoch
        for user in list(last_versions):
            version = cached.neighborhood.user_version(user)
            assert version >= last_versions[user]
            last_versions[user] = version
        if op[0] in ("observe", "batch"):
            touched = [op[1]] if op[0] == "observe" else [e[0] for e in events]
            for user in touched:
                last_versions[user] = cached.neighborhood.user_version(user)

    # Final state parity: full catalog scores per user (the serving path is
    # batch-of-one; cache entries are reused only under identical batch
    # shapes there, which is what makes bit-identity achievable at all — a
    # float32 index search answers a 10-row batch a few float32 ulps apart
    # from a 1-row batch), and the neighborhood embedding matrices.
    for user in range(min(10, plain.neighborhood.num_users)):
        np.testing.assert_array_equal(plain.score_items(user), cached.score_items(user))
    np.testing.assert_array_equal(
        plain.neighborhood._user_embeddings, cached.neighborhood._user_embeddings
    )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_cached_serving_bit_identical_brute_force(base_stack, data):
    num_users = base_stack[1].num_users
    num_items = base_stack[1].num_items
    ops = data.draw(_op_sequences(num_users, num_items, with_maintain=False))
    _replay(base_stack, ops, capacity=64)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_cached_serving_bit_identical_ivf_with_maintain(ivf_stack, data):
    num_users = ivf_stack[1].num_users
    num_items = ivf_stack[1].num_items
    ops = data.draw(_op_sequences(num_users, num_items, with_maintain=True))
    _replay(ivf_stack, ops, capacity=64)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_cached_serving_bit_identical_under_tiny_capacity(base_stack, data):
    """Capacity 3 forces constant evictions; parity must still hold exactly."""

    num_users = base_stack[1].num_users
    num_items = base_stack[1].num_items
    ops = data.draw(_op_sequences(num_users, num_items, with_maintain=False))
    _replay(base_stack, ops, capacity=3)
