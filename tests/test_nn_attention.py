"""Unit tests for the Transformer components used by SASRec."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.attention import (
    MultiHeadSelfAttention,
    PositionwiseFeedForward,
    TransformerEncoderLayer,
    causal_mask,
    scaled_dot_product_attention,
)


class TestCausalMask:
    def test_shape_and_diagonal(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert not mask.diagonal().any()  # a position may attend to itself

    def test_upper_triangle_blocked(self):
        mask = causal_mask(3)
        assert mask[0, 1] and mask[0, 2] and mask[1, 2]
        assert not mask[1, 0] and not mask[2, 0]


class TestScaledDotProductAttention:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        q = nn.Tensor(rng.normal(size=(2, 5, 8)))
        out = scaled_dot_product_attention(q, q, q)
        assert out.shape == (2, 5, 8)

    def test_uniform_attention_when_scores_equal(self):
        # Identical keys -> uniform weights -> output equals mean of values.
        q = nn.Tensor(np.ones((1, 3, 4)))
        k = nn.Tensor(np.ones((1, 3, 4)))
        v = nn.Tensor(np.arange(12, dtype=float).reshape(1, 3, 4))
        out = scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(out.data[0, 0], v.data[0].mean(axis=0), rtol=1e-8)

    def test_causal_mask_blocks_future(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=(1, 4, 4))
        q = nn.Tensor(rng.normal(size=(1, 4, 4)))
        out_full = scaled_dot_product_attention(q, q, nn.Tensor(values), mask=causal_mask(4))
        # Changing the last value row must not affect the first position's output.
        perturbed = values.copy()
        perturbed[0, 3] += 100.0
        out_perturbed = scaled_dot_product_attention(q, q, nn.Tensor(perturbed), mask=causal_mask(4))
        np.testing.assert_allclose(out_full.data[0, 0], out_perturbed.data[0, 0], rtol=1e-8)
        # ...but it must affect the last position's output.
        assert not np.allclose(out_full.data[0, 3], out_perturbed.data[0, 3])


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        attention = MultiHeadSelfAttention(hidden_dim=16, num_heads=4)
        x = nn.Tensor(np.random.default_rng(0).normal(size=(3, 6, 16)))
        assert attention(x).shape == (3, 6, 16)

    def test_invalid_head_split_raises(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(hidden_dim=10, num_heads=3)

    def test_gradients_flow(self):
        attention = MultiHeadSelfAttention(hidden_dim=8, num_heads=2)
        x = nn.Tensor(np.random.default_rng(0).normal(size=(2, 4, 8)), requires_grad=True)
        attention(x).sum().backward()
        assert x.grad.shape == (2, 4, 8)
        for param in attention.parameters():
            assert param.grad is not None

    def test_padding_mask_batch_specific(self):
        attention = MultiHeadSelfAttention(hidden_dim=8, num_heads=1)
        rng = np.random.default_rng(2)
        x = nn.Tensor(rng.normal(size=(2, 3, 8)))
        mask = np.zeros((2, 3, 3), dtype=bool)
        mask[0, :, 2] = True  # first batch element cannot attend to position 2
        out = attention(x, mask=mask)
        assert out.shape == (2, 3, 8)
        assert np.all(np.isfinite(out.data))


class TestPositionwiseFeedForward:
    def test_shape_preserved(self):
        ffn = PositionwiseFeedForward(hidden_dim=12)
        x = nn.Tensor(np.ones((2, 5, 12)))
        assert ffn(x).shape == (2, 5, 12)

    def test_positions_independent(self):
        ffn = PositionwiseFeedForward(hidden_dim=6)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 4, 6))
        out_full = ffn(nn.Tensor(x)).data
        # Changing one position must not change another position's output.
        x2 = x.copy()
        x2[0, 3] += 5.0
        out_perturbed = ffn(nn.Tensor(x2)).data
        np.testing.assert_allclose(out_full[0, 0], out_perturbed[0, 0], rtol=1e-10)


class TestTransformerEncoderLayer:
    def test_shape(self):
        layer = TransformerEncoderLayer(hidden_dim=16, num_heads=2)
        x = nn.Tensor(np.random.default_rng(0).normal(size=(2, 7, 16)))
        assert layer(x, mask=causal_mask(7)).shape == (2, 7, 16)

    def test_deterministic_in_eval_mode(self):
        layer = TransformerEncoderLayer(hidden_dim=8, num_heads=1, dropout=0.5)
        layer.eval()
        x = nn.Tensor(np.random.default_rng(0).normal(size=(1, 4, 8)))
        first = layer(x).data
        second = layer(x).data
        np.testing.assert_allclose(first, second)

    def test_dropout_changes_training_output(self):
        layer = TransformerEncoderLayer(hidden_dim=8, num_heads=1, dropout=0.5,
                                        rng=np.random.default_rng(0))
        layer.train()
        x = nn.Tensor(np.random.default_rng(1).normal(size=(1, 4, 8)))
        assert not np.allclose(layer(x).data, layer(x).data)

    def test_causality_end_to_end(self):
        layer = TransformerEncoderLayer(hidden_dim=8, num_heads=1)
        layer.eval()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 5, 8))
        base = layer(nn.Tensor(x), mask=causal_mask(5)).data
        x_changed = x.copy()
        x_changed[0, 4] += 10.0  # perturb the last position only
        changed = layer(nn.Tensor(x_changed), mask=causal_mask(5)).data
        np.testing.assert_allclose(base[0, :4], changed[0, :4], rtol=1e-8)
        assert not np.allclose(base[0, 4], changed[0, 4])
