"""Chaos suite: supervised workers, degraded serving, and the fault harness.

Everything here injects *deterministic* faults through
:class:`repro.testing.FaultInjector` and asserts the stack's contract under
them:

* **Fault injector** — the harness itself is deterministic: same seed, same
  kill schedule; ``tick`` kills on an exact cadence; programming errors are
  rejected eagerly.
* **Degraded scatter-gather** (process backend) — with
  ``failure_policy="degrade"`` a worker outage answers from the surviving
  shards (verified value-identical to a brute-force index over exactly the
  surviving rows), an all-shards outage answers empty, and recovery restores
  bit-identical parity with a never-faulted baseline.  A hypothesis chaos
  run interleaves kills with mutations and searches, kills *every* worker at
  least once, and must never raise.
* **Pipe faults** — dropped replies recycle the (innocent) worker via the
  response timeout; short delays are slow-but-correct; long delays degrade
  and recover.  Restarts replace the tampered pipe with an honest one.
* **Serving stack** — ``RealTimeServer.health()`` snapshots, the
  degrade-but-never-cache rule for partial answers, the stale-or-empty
  fallback when scoring raises, request-boundary id hardening, deadline
  accounting, and :class:`MaintenanceScheduler` exception containment with
  exponential backoff.
* **Thread backend** — :class:`ShardedIndex` honors the same
  ``failure_policy`` contract when a shard backend throws.

Worker processes cost ~0.5–1 s to spawn on the CI box, so the hypothesis
chaos test shares one pooled index across examples (its restart budget is
effectively unlimited because ``build()`` only resets budgets of shards it
revives).
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import BruteForceIndex, ProcessShardedIndex, ShardedIndex
from repro.ann.sharded import SearchResults
from repro.core import SCCF, MaintenanceScheduler, RealTimeServer, SCCFConfig
from repro.core.realtime import HealthReport
from repro.testing import FaultInjector, InjectedFault
from repro.testing.faults import _FlakyPipe


def _survivor_baseline(vectors: np.ndarray, dead_shard: int, num_shards: int) -> BruteForceIndex:
    """Brute force over exactly the rows the surviving shards hold."""

    positions = np.arange(len(vectors))
    mask = positions % num_shards != dead_shard
    return BruteForceIndex().build(vectors[mask], ids=positions[mask])


def _assert_same_results(got, expected) -> None:
    assert len(got) == len(expected)
    for (ids, scores), (exp_ids, exp_scores) in zip(got, expected):
        np.testing.assert_array_equal(ids, exp_ids)
        np.testing.assert_array_equal(scores, exp_scores)


# --------------------------------------------------------------------- #
# pooled degrade-policy index for the hypothesis chaos run
# --------------------------------------------------------------------- #
_CHAOS_POOL = {}


def _chaos_index(num_shards: int) -> ProcessShardedIndex:
    index = _CHAOS_POOL.get(num_shards)
    if index is None:
        index = ProcessShardedIndex(
            num_shards=num_shards,
            initial_capacity=8,
            failure_policy="degrade",
            restart_budget=1_000_000,
            restart_backoff=0.01,
            restart_backoff_cap=0.05,
        )
        _CHAOS_POOL[num_shards] = index
    return index


@pytest.fixture(scope="module", autouse=True)
def _close_pool():
    yield
    for index in _CHAOS_POOL.values():
        index.close()
    _CHAOS_POOL.clear()
    assert multiprocessing.active_children() == []


# --------------------------------------------------------------------- #
# the injector itself is deterministic and strict
# --------------------------------------------------------------------- #
class _FakeProc:
    def __init__(self):
        self.alive = True
        self.kills = 0

    def is_alive(self):
        return self.alive

    def kill(self):
        self.alive = False
        self.kills += 1

    def join(self, timeout=None):
        pass


class _FakeSlot:
    def __init__(self):
        self.proc = _FakeProc()
        self.conn = None


class _FakeIndex:
    def __init__(self, num_shards):
        self._slots = [_FakeSlot() for _ in range(num_shards)]


class TestFaultInjector:
    def test_same_seed_same_kill_schedule(self):
        logs = []
        for _ in range(2):
            index = _FakeIndex(6)
            injector = FaultInjector(seed=42)
            for _ in range(4):
                injector.kill_worker(index)
            logs.append(injector.kill_log)
        assert logs[0] == logs[1] and len(logs[0]) == 4

    def test_tick_kills_on_exact_cadence(self):
        index = _FakeIndex(8)
        injector = FaultInjector(seed=0, kill_every=3)
        killed_on = [tick for tick in range(1, 10) if injector.tick(index) is not None]
        assert killed_on == [3, 6, 9]
        assert injector.ticks == 9 and injector.kills == 3
        assert len(injector.kill_log) == 3

    def test_no_live_workers_means_no_kill(self):
        index = _FakeIndex(2)
        injector = FaultInjector(seed=1)
        assert injector.kill_worker(index, shard=0) == 0
        assert injector.kill_worker(index, shard=0) is None  # already dead
        assert injector.kill_worker(index) == 1
        assert injector.kill_worker(index) is None  # nobody left
        assert injector.kills == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="kill_every"):
            FaultInjector(kill_every=0)
        injector = FaultInjector()
        index = _FakeIndex(1)
        with pytest.raises(RuntimeError, match="no live pipe"):
            injector.drop_replies(index, 0)
        with pytest.raises(ValueError, match="count"):
            injector.drop_replies(_FakeIndex(1), 0, count=0)
        with pytest.raises(ValueError, match="seconds"):
            injector.delay_replies(_FakeIndex(1), 0, seconds=0)
        with pytest.raises(ValueError, match="times"):
            injector.fail_maintenance(object(), times=0)


# --------------------------------------------------------------------- #
# degraded scatter-gather on the process backend
# --------------------------------------------------------------------- #
class TestDegradedProcessServing:
    def test_degrade_serves_survivors_then_recovers_bit_identical(self, rng):
        vectors = rng.normal(size=(12, 4))
        flat = BruteForceIndex().build(vectors)
        survivors = _survivor_baseline(vectors, dead_shard=0, num_shards=2)
        queries = rng.normal(size=(3, 4))
        with ProcessShardedIndex(
            num_shards=2, initial_capacity=8, failure_policy="degrade", restart_backoff=0.01
        ) as index:
            index.build(vectors)
            injector = FaultInjector(seed=0)
            assert injector.kill_worker(index, shard=0) == 0
            results = index.search_batch(queries, 4)
            assert isinstance(results, SearchResults) and results.degraded
            assert index.degraded_requests == 1
            # the degraded answer is exactly the surviving shard's rows
            _assert_same_results(results, survivors.search_batch(queries, 4))
            assert index.wait_until_healthy(timeout=30.0)
            healed = index.search_batch(queries, 4)
            assert not getattr(healed, "degraded", False)
            _assert_same_results(healed, flat.search_batch(queries, 4))
            assert index.restarts_total == 1

    def test_all_shards_down_serves_empty_then_recovers(self, rng):
        vectors = rng.normal(size=(8, 3))
        flat = BruteForceIndex().build(vectors)
        queries = rng.normal(size=(2, 3))
        with ProcessShardedIndex(
            num_shards=2, initial_capacity=8, failure_policy="degrade", restart_backoff=0.01
        ) as index:
            index.build(vectors)
            injector = FaultInjector(seed=0)
            injector.kill_worker(index, shard=0)
            injector.kill_worker(index, shard=1)
            results = index.search_batch(queries, 3)
            assert results.degraded and len(results) == 2
            for ids, scores in results:
                assert len(ids) == 0 and len(scores) == 0
            assert index.wait_until_healthy(timeout=30.0)
            _assert_same_results(index.search_batch(queries, 3), flat.search_batch(queries, 3))

    def test_exhausted_budget_tombstones_until_rebuild(self, rng):
        vectors = rng.normal(size=(8, 3))
        flat = BruteForceIndex().build(vectors)
        with ProcessShardedIndex(
            num_shards=2, initial_capacity=8, restart_budget=0, restart_backoff=0.01
        ) as index:
            index.build(vectors)
            FaultInjector(seed=0).kill_worker(index, shard=1)
            # budget 0: the first supervision pass tombstones the shard, and
            # the raise policy names the terminal condition
            with pytest.raises(RuntimeError, match="restart budget"):
                index.search_batch(rng.normal(size=(1, 3)), 2)
            assert not index.healthy
            assert not index.wait_until_healthy(timeout=2.0)  # dead is terminal
            states = {health.shard: health.state for health in index.shard_health()}
            assert states[1] == "dead"
            # build() is the operator-level recovery: budgets reset, workers
            # respawn, serving resumes bit-identical
            index.build(vectors)
            assert index.healthy
            queries = rng.normal(size=(2, 3))
            _assert_same_results(index.search_batch(queries, 3), flat.search_batch(queries, 3))


@given(
    seed=st.integers(0, 2**31 - 1),
    ops=st.lists(st.sampled_from(["add", "update", "kill"]), max_size=4),
)
@settings(max_examples=5, deadline=None)
def test_chaos_degrade_never_raises_and_recovers(seed, ops):
    """The acceptance chaos run: every worker killed, no raise, exact recovery.

    A degrade-policy index survives an arbitrary interleaving of mutations
    and SIGKILLs — every operation in the sequence is followed by a search
    that must never raise — then every worker is killed at least once more,
    and after ``wait_until_healthy`` the results are bit-identical to a
    never-faulted unsharded ``BruteForceIndex`` over the same mutations.
    """

    rng = np.random.default_rng(seed)
    d = 4
    vectors = rng.normal(size=(10, d))
    flat = BruteForceIndex().build(vectors)
    index = _chaos_index(2).build(vectors)
    injector = FaultInjector(seed=seed)
    for op in ops:
        if op == "kill":
            injector.kill_worker(index)
        elif op == "add":
            extra = rng.normal(size=(2, d))
            flat.add(extra)
            index.add(extra)
        else:
            positions = rng.integers(0, flat.size, size=2)
            replacements = rng.normal(size=(2, d))
            flat.update_batch(positions, replacements)
            index.update_batch(positions, replacements)
        index.search_batch(rng.normal(size=(2, d)), 3)  # must never raise
    # guarantee every worker dies at least once this example
    assert index.wait_until_healthy(timeout=30.0)
    for shard in range(index.num_shards):
        assert injector.kill_worker(index, shard=shard) == shard
        index.search_batch(rng.normal(size=(1, d)), 3)  # must never raise
    assert injector.kills >= index.num_shards
    assert index.wait_until_healthy(timeout=30.0)
    assert all(health.state == "live" for health in index.shard_health())
    queries = rng.normal(size=(4, d))
    _assert_same_results(index.search_batch(queries, 5), flat.search_batch(queries, 5))


# --------------------------------------------------------------------- #
# pipe faults: lost and late replies
# --------------------------------------------------------------------- #
class TestPipeFaults:
    def test_dropped_reply_recycles_innocent_worker(self, rng):
        vectors = rng.normal(size=(10, 3))
        flat = BruteForceIndex().build(vectors)
        queries = rng.normal(size=(2, 3))
        with ProcessShardedIndex(
            num_shards=2,
            initial_capacity=8,
            failure_policy="degrade",
            response_timeout=0.6,
            restart_backoff=0.01,
        ) as index:
            index.build(vectors)
            injector = FaultInjector(seed=0)
            injector.drop_replies(index, shard=1, count=1)
            results = index.search_batch(queries, 3)
            assert results.degraded  # the reply vanished; the shard timed out
            assert index.wait_until_healthy(timeout=30.0)
            assert index.restarts_total == 1
            # the respawned worker got a fresh, honest pipe
            assert not isinstance(index._slots[1].conn, _FlakyPipe)
            _assert_same_results(index.search_batch(queries, 3), flat.search_batch(queries, 3))

    def test_short_delay_is_slow_but_correct(self, rng):
        vectors = rng.normal(size=(10, 3))
        flat = BruteForceIndex().build(vectors)
        queries = rng.normal(size=(2, 3))
        with ProcessShardedIndex(
            num_shards=2, initial_capacity=8, failure_policy="degrade", restart_backoff=0.01
        ) as index:
            index.build(vectors)
            FaultInjector(seed=0).delay_replies(index, shard=0, seconds=0.2)
            results = index.search_batch(queries, 3)  # late < timeout: full answer
            assert not getattr(results, "degraded", False)
            _assert_same_results(results, flat.search_batch(queries, 3))
            assert index.restarts_total == 0

    def test_long_delay_times_out_then_recovers(self, rng):
        vectors = rng.normal(size=(10, 3))
        flat = BruteForceIndex().build(vectors)
        queries = rng.normal(size=(2, 3))
        with ProcessShardedIndex(
            num_shards=2,
            initial_capacity=8,
            failure_policy="degrade",
            response_timeout=0.5,
            restart_backoff=0.01,
        ) as index:
            index.build(vectors)
            FaultInjector(seed=0).delay_replies(index, shard=0, seconds=2.0)
            results = index.search_batch(queries, 3)
            assert results.degraded
            assert index.wait_until_healthy(timeout=30.0)
            assert index.restarts_total >= 1
            _assert_same_results(index.search_batch(queries, 3), flat.search_batch(queries, 3))


# --------------------------------------------------------------------- #
# the full serving stack under faults
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def fault_server(tiny_dataset, trained_fism):
    config = SCCFConfig(
        num_neighbors=8,
        candidate_list_size=20,
        merger_epochs=1,
        num_shards=2,
        shard_backend="process",
        failure_policy="degrade",
        cache_capacity=64,
        seed=3,
    )
    sccf = SCCF(trained_fism, config).fit(tiny_dataset, fit_ui_model=False)
    server = RealTimeServer(sccf, tiny_dataset, default_deadline_ms=10_000.0)
    yield server
    server.close()


class TestServingStackFaults:
    def test_health_snapshot_on_healthy_stack(self, fault_server):
        report = fault_server.health()
        assert isinstance(report, HealthReport)
        assert report.healthy
        assert report.workers_alive == 2 and len(report.shards) == 2
        assert report.restarts_total == 0
        assert report.cache is not None and len(report.cache.layers) == 4

    def test_degraded_recommend_is_served_but_never_cached(self, fault_server):
        server = fault_server
        cache = server.sccf.cache
        index = server.sccf.neighborhood.index
        # fit() warms the neighbors layer for the validation users, which
        # would mask the outage — degrade behavior needs a cold cache
        cache.clear()
        FaultInjector(seed=0).kill_worker(index)
        first = server.recommend(1, k=5)
        assert server.served_degraded == 1
        assert isinstance(first, list)
        # nothing index-derived from the degraded pass was memoized
        assert len(cache.recommendations) == 0
        assert len(cache.neighbors) == 0
        report = server.health()
        assert report.served_degraded == 1 and report.degraded_requests >= 1
        assert index.wait_until_healthy(timeout=30.0)
        assert server.health().restarts_total >= 1
        healed = server.recommend(1, k=5)
        assert len(cache.recommendations) == 1  # healthy answers are cached
        hits_before = cache.recommendations.stats.hits
        assert server.recommend(1, k=5) == healed
        assert cache.recommendations.stats.hits == hits_before + 1
        assert server.served_degraded == 1  # healthy serves don't count

    def test_scoring_failure_serves_stale_then_empty(self, fault_server, tiny_dataset):
        server = fault_server
        user = 2
        baseline = server.recommend(user, k=5)  # healthy: computed and cached
        # observing bumps the user's version and the index epoch, so the
        # cached list is token-stale (but still stored) for the next request
        server.observe(user, 1)

        def explode(*args, **kwargs):
            raise RuntimeError("all shards down")

        # recommend routes through the batched canonical, so that's the
        # surface a scoring outage reaches first
        server.sccf.score_items_batch = explode
        try:
            stale = server.recommend(user, k=5)
            assert stale == baseline
            assert server.served_stale == 1 and server.recommend_failures == 1
            # a user with nothing cached falls through to the empty list
            assert server.recommend(tiny_dataset.num_users - 1, k=5) == []
            assert server.recommend_failures == 2 and server.served_stale == 1
        finally:
            del server.sccf.score_items_batch
        assert server.recommend(user, k=5) == server.recommend(user, k=5)  # recovered

    def test_request_ids_are_hardened(self, fault_server):
        server = fault_server
        for junk in (float("nan"), float("inf"), 2.5, "7", None, True):
            with pytest.raises(ValueError, match="user_id"):
                server.recommend(junk, k=3)
            with pytest.raises(ValueError, match="user_id"):
                server.observe(junk, 0)
        with pytest.raises(ValueError, match="item_id"):
            server.observe(0, float("nan"))
        # true integers, numpy scalars and integral floats all pass
        assert isinstance(server.recommend(np.int64(1), k=3), list)
        assert isinstance(server.recommend(3.0, k=3), list)

    def test_deadlines_validated_and_misses_counted(self, fault_server, tiny_dataset):
        server = fault_server
        with pytest.raises(ValueError, match="deadline_ms"):
            server.recommend(1, k=3, deadline_ms=0)
        with pytest.raises(ValueError, match="default_deadline_ms"):
            RealTimeServer(server.sccf, tiny_dataset, default_deadline_ms=0)
        misses_before = server.deadline_misses
        server.recommend(4, k=3, deadline_ms=1e-9)  # nothing finishes this fast
        assert server.deadline_misses == misses_before + 1
        assert server.health().deadline_misses == server.deadline_misses

    def test_maintenance_failures_contained_with_backoff(self, fault_server):
        server = fault_server
        scheduler = MaintenanceScheduler(server, every_events=4)
        injector = FaultInjector(seed=0)
        injector.fail_maintenance(server, times=2)
        assert scheduler.notify(4) is None  # failure 1, contained
        assert scheduler.maintenance_failures == 1 and scheduler.failure_streak == 1
        assert "InjectedFault" in scheduler.last_failure
        assert scheduler.notify(4) is None  # backoff: needs 8 now
        assert scheduler.maintenance_failures == 1
        assert scheduler.notify(4) is None  # failure 2 at 8 events
        assert scheduler.maintenance_failures == 2 and scheduler.failure_streak == 2
        assert scheduler.notify(15) is None  # backoff: needs 16 now
        report = scheduler.notify(1)  # the patch has expired: pass succeeds
        assert report is not None
        assert scheduler.passes_run == 1 and scheduler.failure_streak == 0
        assert scheduler.last_failure is None
        # the scheduler's counters surface through health()
        server.scheduler = scheduler
        try:
            report = server.health()
            assert report.maintenance_failures == 2 and report.maintenance_passes == 1
        finally:
            server.scheduler = None
        # explicit operator calls still get the traceback
        injector.fail_maintenance(server, times=1)
        with pytest.raises(InjectedFault):
            server.maintain()


# --------------------------------------------------------------------- #
# the thread backend honors the same failure-policy contract
# --------------------------------------------------------------------- #
class TestThreadBackendDegrade:
    @staticmethod
    def _sabotage(index, shard):
        def explode(*args, **kwargs):
            raise RuntimeError("shard backend exploded")

        index._shards[shard].search_batch = explode

    def test_degrade_serves_survivors(self, rng):
        vectors = rng.normal(size=(12, 4))
        survivors = _survivor_baseline(vectors, dead_shard=0, num_shards=2)
        queries = rng.normal(size=(3, 4))
        index = ShardedIndex(num_shards=2, failure_policy="degrade").build(vectors)
        self._sabotage(index, 0)
        results = index.search_batch(queries, 4)
        assert isinstance(results, SearchResults) and results.degraded
        assert index.degraded_requests == 1
        _assert_same_results(results, survivors.search_batch(queries, 4))

    def test_degrade_with_thread_fanout_and_total_outage(self, rng):
        vectors = rng.normal(size=(12, 4))
        queries = rng.normal(size=(2, 4))
        with ShardedIndex(num_shards=2, num_threads=2, failure_policy="degrade") as index:
            index.build(vectors)
            self._sabotage(index, 1)
            results = index.search_batch(queries, 3)
            assert results.degraded and index.degraded_requests == 1
            self._sabotage(index, 0)
            empty = index.search_batch(queries, 3)
            assert empty.degraded and len(empty) == 2
            for ids, scores in empty:
                assert len(ids) == 0 and len(scores) == 0

    def test_raise_policy_propagates_shard_errors(self, rng):
        index = ShardedIndex(num_shards=2).build(rng.normal(size=(8, 3)))
        self._sabotage(index, 0)
        with pytest.raises(RuntimeError, match="exploded"):
            index.search_batch(rng.normal(size=(1, 3)), 2)
        assert index.degraded_requests == 0

    def test_search_results_behave_like_lists(self):
        plain = SearchResults([(np.array([1]), np.array([0.5]))])
        assert not plain.degraded and len(plain) == 1
        tagged = SearchResults(degraded=True)
        assert tagged.degraded and list(tagged) == []

    def test_failure_policy_validation(self):
        with pytest.raises(ValueError, match="failure_policy"):
            ShardedIndex(failure_policy="bogus")
        with pytest.raises(ValueError, match="failure_policy"):
            ProcessShardedIndex(failure_policy="bogus")
        with pytest.raises(ValueError, match="failure_policy"):
            SCCFConfig(failure_policy="bogus")
