"""IVF maintenance: imbalance statistic, retrain, auto-retrain, recall floors.

The scenario these pin is the ROADMAP's "periodic IVF re-clustering once
streamed adds skew the cell balance": streaming ``add`` assigns rows to
frozen centroids, so a drifted stream piles rows into a few cells;
``retrain()`` re-runs k-means over the live rows (ids untouched) and restores
the balance the build promised.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import (
    DEFAULT_RETRAIN_THRESHOLD,
    BruteForceIndex,
    IVFIndex,
    kmeans,
)

#: Pinned recall floor for the fixed-seed configurations below (measured
#: 0.73-0.75 at n_probe=4 of 16 cells; the floor leaves ulp-level slack only).
RECALL_FLOOR = 0.70


def _recall_at_10(approx: IVFIndex, exact: BruteForceIndex, queries: np.ndarray) -> float:
    exact_results = exact.search_batch(queries, 10)
    approx_results = approx.search_batch(queries, 10)
    hits = sum(
        len(set(true_ids.tolist()) & set(got_ids.tolist()))
        for (true_ids, _), (got_ids, _) in zip(exact_results, approx_results)
    )
    return hits / (len(queries) * 10)


def _skewed_index(retrain_threshold=None):
    """A fixed-seed IVF index plus the drifted stream that skews it 4x.

    The adds triple the catalog inside a region the build-time centroids
    never saw, so the nearest frozen cells end up holding >= 4x the mean
    cell size.
    """

    rng = np.random.default_rng(42)
    base = rng.normal(size=(400, 16))
    index = IVFIndex(
        num_cells=16, n_probe=4, rng=np.random.default_rng(42),
        retrain_threshold=retrain_threshold,
    ).build(base)
    drift = rng.normal(size=(1200, 16))
    drift[:, 0] += 4.0
    queries = rng.normal(size=(50, 16))
    queries[25:, 0] += 4.0  # queries follow the drifted traffic
    return index, base, drift, queries


class TestImbalance:
    def test_balanced_build_is_near_one(self):
        rng = np.random.default_rng(0)
        index = IVFIndex(num_cells=8, n_probe=2, rng=np.random.default_rng(0)).build(
            rng.normal(size=(400, 8))
        )
        assert 1.0 <= index.imbalance() < DEFAULT_RETRAIN_THRESHOLD

    def test_single_cell_is_exactly_one(self):
        rng = np.random.default_rng(1)
        index = IVFIndex(num_cells=1, n_probe=1).build(rng.normal(size=(20, 4)))
        assert index.imbalance() == pytest.approx(1.0)

    def test_requires_build(self):
        with pytest.raises(RuntimeError):
            IVFIndex().imbalance()
        with pytest.raises(RuntimeError):
            IVFIndex().retrain()

    def test_skewed_adds_raise_imbalance(self):
        index, _, drift, _ = _skewed_index()
        balanced = index.imbalance()
        index.add(drift)
        assert index.imbalance() > DEFAULT_RETRAIN_THRESHOLD > balanced


class TestRetrain:
    def test_retrain_restores_balance_below_threshold_and_preserves_ids(self):
        index, _, drift, _ = _skewed_index()
        index.add(drift)
        ids_before = index._ids.copy()
        vectors_before = index._vectors.copy()
        assert index.imbalance() > DEFAULT_RETRAIN_THRESHOLD
        index.retrain()
        assert index.imbalance() < DEFAULT_RETRAIN_THRESHOLD
        np.testing.assert_array_equal(index._ids, ids_before)
        np.testing.assert_array_equal(index._vectors, vectors_before)
        members = sorted(p for cell in index._cells.values() for p in cell)
        assert members == list(range(index.size))

    def test_retrain_keeps_full_probe_search_exact(self):
        rng = np.random.default_rng(5)
        vectors = rng.normal(size=(80, 8))
        index = IVFIndex(num_cells=4, n_probe=4, rng=np.random.default_rng(5)).build(vectors)
        index.retrain()
        exact = BruteForceIndex().build(vectors)
        query = rng.normal(size=8)
        exact_ids, _ = exact.search(query, k=10)
        approx_ids, _ = index.search(query, k=10)
        np.testing.assert_array_equal(np.sort(exact_ids), np.sort(approx_ids))

    def test_auto_retrain_threshold_triggers_on_add(self):
        auto, _, drift, _ = _skewed_index(retrain_threshold=DEFAULT_RETRAIN_THRESHOLD)
        manual, _, _, _ = _skewed_index()
        manual.add(drift)
        assert manual.imbalance() > DEFAULT_RETRAIN_THRESHOLD  # frozen centroids skew
        auto.add(drift)  # same stream, auto-maintained
        assert auto.imbalance() < DEFAULT_RETRAIN_THRESHOLD
        assert auto.size == manual.size

    def test_retrain_threshold_validation(self):
        with pytest.raises(ValueError):
            IVFIndex(retrain_threshold=0.5)


class TestRecallRegression:
    def test_recall_floor_at_n_probe_4(self):
        rng = np.random.default_rng(42)
        base = rng.normal(size=(400, 16))
        exact = BruteForceIndex().build(base)
        index = IVFIndex(num_cells=16, n_probe=4, rng=np.random.default_rng(42)).build(base)
        queries = rng.normal(size=(50, 16))
        assert _recall_at_10(index, exact, queries) >= RECALL_FLOOR

    def test_retrain_after_skewed_adds_keeps_recall_floor(self):
        index, base, drift, queries = _skewed_index()
        index.add(drift)
        exact = BruteForceIndex().build(np.concatenate([base, drift]))
        index.retrain()
        assert index.imbalance() < DEFAULT_RETRAIN_THRESHOLD
        assert _recall_at_10(index, exact, queries) >= RECALL_FLOOR


class TestZeroVectorErrors:
    def test_build_zero_vectors_clear_error(self):
        with pytest.raises(ValueError, match="zero vectors"):
            IVFIndex().build(np.empty((0, 8)))

    def test_brute_force_build_zero_vectors_same_error(self):
        # all three index types agree, so empty-fit behavior cannot depend on
        # which backend (or num_shards) the stack picked
        with pytest.raises(ValueError, match="zero vectors"):
            BruteForceIndex().build(np.empty((0, 8)))

    def test_kmeans_zero_vectors_clear_error(self):
        with pytest.raises(ValueError, match="zero vectors"):
            kmeans(np.empty((0, 4)), 4)

    def test_kmeans_still_rejects_nonpositive_clusters(self):
        with pytest.raises(ValueError, match="num_clusters"):
            kmeans(np.ones((5, 2)), 0)
