"""Durable ingestion end to end: journal + snapshot = bit-identical recovery.

The contract under test (ISSUE 10): a :class:`RealTimeServer` with a WAL
attached journals every ``observe_batch`` and every retraining ``maintain``
*before* applying it, so a crash at any byte of the journal recovers to
exactly the committed prefix — same recommendations, same histories, same
index epoch, same RNG stream for future maintenance.  A cold replica tailing
the primary's journal through :meth:`RealTimeServer.catch_up` converges to
the same state without ever truncating the primary's files.

The hypothesis suite at the bottom is the teeth: a random op stream, a crash
at a random byte offset, under every fsync policy — recovery must equal
replaying exactly the records that still verify before the damage.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ann import IVFIndex
from repro.core import SCCF, MaintenanceScheduler, RealTimeServer, SCCFConfig
from repro.core.snapshot import list_generations
from repro.core.wal import WALError, WriteAheadLog, decode_payload, replay_wal, scan_segment
from repro.testing import FaultInjector, InjectedFault


def _sccf(trained_fism, fit_on=None):
    sccf = SCCF(
        trained_fism,
        SCCFConfig(
            num_neighbors=10,
            candidate_list_size=30,
            merger_epochs=2,
            cache_capacity=32,
            seed=3,
        ),
        neighbor_index=IVFIndex(num_cells=4, n_probe=2, rng=np.random.default_rng(7)),
    )
    if fit_on is not None:
        sccf.fit(fit_on, fit_ui_model=False)
    return sccf


def _recs(server, dataset, k=10):
    return {user: server.recommend(user, k=k) for user in dataset.evaluation_users()}


def _assert_parity(left, right, dataset):
    assert _recs(left, dataset) == _recs(right, dataset)
    for user in dataset.evaluation_users():
        assert left.history(user) == right.history(user)
    assert left.sccf.neighborhood.index.epoch == right.sccf.neighborhood.index.epoch


@pytest.fixture()
def durable_server(tiny_dataset, trained_fism, tmp_path):
    server = RealTimeServer(
        _sccf(trained_fism, fit_on=tiny_dataset),
        tiny_dataset,
        default_deadline_ms=250.0,
        wal_dir=tmp_path / "wal",
        wal_fsync="always",
    )
    yield server
    server.close()


class TestCrashRecovery:
    def _stream(self, server, dataset):
        users = dataset.evaluation_users()
        for step, user in enumerate(users[:6]):
            server.observe(user, 1 + step % 3)
        server.maintain(imbalance_threshold=0.5)
        for step, user in enumerate(users[2:8]):
            server.observe(user, 2 + step % 4)

    def test_recovery_is_bit_identical(self, durable_server, tiny_dataset, trained_fism, tmp_path):
        durable_server.save_snapshot(tmp_path / "snap")
        self._stream(durable_server, tiny_dataset)
        # No clean shutdown: the writer "dies" (releasing the single-writer
        # lock, flushing nothing) and the journal alone carries everything
        # since the snapshot (fsync="always" put every record on disk).
        FaultInjector().crash_wal_writer(durable_server.wal)
        recovered = RealTimeServer.load_snapshot(
            tmp_path / "snap",
            _sccf(trained_fism),
            tiny_dataset,
            wal_dir=tmp_path / "wal",
        )
        _assert_parity(durable_server, recovered, tiny_dataset)

    def test_recovered_server_replays_future_maintenance_identically(
        self, durable_server, tiny_dataset, trained_fism, tmp_path
    ):
        durable_server.save_snapshot(tmp_path / "snap")
        self._stream(durable_server, tiny_dataset)
        # Read-only catch-up (the primary is still live and owns the journal).
        recovered = RealTimeServer.load_snapshot(
            tmp_path / "snap", _sccf(trained_fism), tiny_dataset
        )
        recovered.catch_up(tmp_path / "wal")
        # RNG-stream parity: the *next* retrain re-clusters identically.
        left = durable_server.maintain(imbalance_threshold=0.5)
        right = recovered.maintain(imbalance_threshold=0.5)
        assert left.retrained and right.retrained
        _assert_parity(durable_server, recovered, tiny_dataset)

    def test_crash_mid_append_loses_only_the_torn_record(
        self, durable_server, tiny_dataset, trained_fism, tmp_path
    ):
        durable_server.save_snapshot(tmp_path / "snap")
        users = tiny_dataset.evaluation_users()
        durable_server.observe(users[0], 1)
        durable_server.observe(users[1], 2)
        FaultInjector(seed=2).crash_wal_mid_append(times=1, keep_bytes=9)
        with pytest.raises(InjectedFault):
            durable_server.observe(users[2], 3)
        # The torn observe was never applied either — journal-first means the
        # server state and the journal agree on what exists.
        assert 3 not in durable_server.history(users[2])
        FaultInjector().crash_wal_writer(durable_server.wal)
        recovered = RealTimeServer.load_snapshot(
            tmp_path / "snap",
            _sccf(trained_fism),
            tiny_dataset,
            wal_dir=tmp_path / "wal",
        )
        assert recovered.history(users[0])[-1] == 1
        assert recovered.history(users[1])[-1] == 2
        _assert_parity(durable_server, recovered, tiny_dataset)

    def test_fsync_failure_rollback_keeps_journal_and_recovery_agreed(
        self, durable_server, tiny_dataset, trained_fism, tmp_path
    ):
        """The review scenario: fsync fails, the observe is refused — the
        journal must not keep the unapplied record, and a retry must not
        journal a duplicate, so recovery equals the live server exactly."""

        durable_server.save_snapshot(tmp_path / "snap")
        users = tiny_dataset.evaluation_users()
        durable_server.observe(users[0], 1)
        FaultInjector().fail_wal_fsync(times=1)
        with pytest.raises(WALError):
            durable_server.observe(users[1], 2)
        # EventBuffer-style retry: same event, next sequence, no duplicate.
        durable_server.observe(users[1], 2)
        assert durable_server.health().wal_fsync_failures == 1
        FaultInjector().crash_wal_writer(durable_server.wal)
        recovered = RealTimeServer.load_snapshot(
            tmp_path / "snap",
            _sccf(trained_fism),
            tiny_dataset,
            wal_dir=tmp_path / "wal",
        )
        # Bit-identical — in particular users[1] saw item 2 exactly once.
        assert recovered._wal_applied_seq == durable_server._wal_applied_seq
        assert recovered.history(users[1]) == durable_server.history(users[1])
        _assert_parity(durable_server, recovered, tiny_dataset)

    def test_recovery_over_a_live_primary_journal_fails_fast(
        self, durable_server, tiny_dataset, trained_fism, tmp_path
    ):
        durable_server.save_snapshot(tmp_path / "snap")
        users = tiny_dataset.evaluation_users()
        durable_server.observe(users[0], 1)
        segment = next((tmp_path / "wal").glob("wal-*.seg"))
        size = segment.stat().st_size
        # Attaching a WAL takes ownership (recovery truncates "torn" tails);
        # over a *live* primary's directory that must fail fast, not shear
        # the primary's in-flight record.
        with pytest.raises(WALError, match="another writer"):
            RealTimeServer.load_snapshot(
                tmp_path / "snap",
                _sccf(trained_fism),
                tiny_dataset,
                wal_dir=tmp_path / "wal",
            )
        assert segment.stat().st_size == size
        durable_server.observe(users[1], 2)  # the primary is unharmed

    def test_snapshot_records_wal_seq_and_prunes(self, tiny_dataset, trained_fism, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="always", segment_bytes=256)
        server = RealTimeServer(
            _sccf(trained_fism, fit_on=tiny_dataset), tiny_dataset, wal=wal
        )
        users = tiny_dataset.evaluation_users()
        for step in range(12):
            server.observe(users[step % 6], 1 + step % 3)
        segments_before = wal.stats().segments
        assert segments_before > 1
        server.save_snapshot(tmp_path / "snap")
        stats = wal.stats()
        assert stats.lag == 0
        assert stats.segments < segments_before  # committed segments pruned
        server.close()


class TestReplicaCatchUp:
    def test_cold_replica_tails_primary(self, durable_server, tiny_dataset, trained_fism, tmp_path):
        durable_server.save_snapshot(tmp_path / "snap")
        users = tiny_dataset.evaluation_users()
        for user in users[:5]:
            durable_server.observe(user, 2)
        durable_server.maintain(imbalance_threshold=0.5)
        replica = RealTimeServer.load_snapshot(
            tmp_path / "snap", _sccf(trained_fism), tiny_dataset
        )
        assert replica.catch_up(tmp_path / "wal") > 0
        _assert_parity(durable_server, replica, tiny_dataset)
        # The primary keeps streaming; the replica converges again.
        durable_server.observe(users[0], 4)
        assert replica.catch_up(tmp_path / "wal") == 1
        _assert_parity(durable_server, replica, tiny_dataset)

    def test_replica_replay_never_truncates_primary_journal(
        self, durable_server, tiny_dataset, trained_fism, tmp_path
    ):
        durable_server.save_snapshot(tmp_path / "snap")
        for user in tiny_dataset.evaluation_users()[:4]:
            durable_server.observe(user, 1)
        segment = next((tmp_path / "wal").glob("wal-*.seg"))
        with open(segment, "ab") as handle:  # repolint: disable=RL008 -- simulated in-flight write
            handle.write(b"\x99" * 7)  # primary mid-append: a torn tail, live
        size = segment.stat().st_size
        replica = RealTimeServer.load_snapshot(
            tmp_path / "snap", _sccf(trained_fism), tiny_dataset
        )
        applied = replica.catch_up(tmp_path / "wal")
        assert applied == 4
        assert segment.stat().st_size == size  # read-only: repair is the owner's job
        for user in tiny_dataset.evaluation_users()[:4]:
            assert replica.history(user) == durable_server.history(user)

    def test_replica_does_not_rejournal_replayed_records(
        self, durable_server, tiny_dataset, trained_fism, tmp_path
    ):
        durable_server.save_snapshot(tmp_path / "snap")
        for user in tiny_dataset.evaluation_users()[:3]:
            durable_server.observe(user, 1)
        replica = RealTimeServer.load_snapshot(
            tmp_path / "snap",
            _sccf(trained_fism),
            tiny_dataset,
            wal_dir=tmp_path / "replica-wal",
        )
        replica.catch_up(tmp_path / "wal")
        # Replayed records must not be appended to the replica's own journal:
        # they are already durable upstream, and re-journaling would assign
        # them fresh sequence numbers that diverge from the primary's.
        assert list(replay_wal(tmp_path / "replica-wal")) == []

    def test_replay_does_not_pollute_latency_windows(
        self, durable_server, tiny_dataset, trained_fism, tmp_path
    ):
        durable_server.save_snapshot(tmp_path / "snap")
        for user in tiny_dataset.evaluation_users()[:4]:
            durable_server.observe(user, 1)
        replica = RealTimeServer.load_snapshot(
            tmp_path / "snap", _sccf(trained_fism), tiny_dataset
        )
        assert replica.catch_up(tmp_path / "wal") == 4
        # Replay timings are not serving traffic: a freshly caught-up replica
        # must report empty SLO windows, not percentiles shaped by replay.
        assert replica.average_latency() is None
        assert len(replica.observe_request_latencies) == 0
        report = replica.health()
        assert report.observe_p50_ms is None
        # Real traffic lands in the windows as usual afterwards.
        replica.observe(tiny_dataset.evaluation_users()[0], 2)
        assert len(replica.observe_request_latencies) == 1

    def test_catch_up_refuses_a_gapped_journal(
        self, tiny_dataset, trained_fism, tmp_path
    ):
        """A replica whose position predates the oldest surviving segment
        must fail loudly, not silently apply a non-contiguous prefix."""

        wal = WriteAheadLog(tmp_path / "wal", fsync="always", segment_bytes=256)
        server = RealTimeServer(
            _sccf(trained_fism, fit_on=tiny_dataset), tiny_dataset, wal=wal
        )
        server.save_snapshot(tmp_path / "snap", keep=5)
        stale_generation = list_generations(tmp_path / "snap")[-1]
        users = tiny_dataset.evaluation_users()
        for step in range(12):
            server.observe(users[step % 6], 1 + step % 3)
        assert wal.stats().segments > 1
        server.save_snapshot(tmp_path / "snap", keep=5)  # prunes covered segments
        # A replica bootstrapped from the *older* generation: the pruned
        # journal no longer reaches back to its position.
        replica = RealTimeServer.load_snapshot(
            stale_generation, _sccf(trained_fism), tiny_dataset
        )
        with pytest.raises(WALError, match="journal gap"):
            replica.catch_up(tmp_path / "wal")
        # Bootstrapping from the *latest* snapshot is the advertised remedy.
        fresh = RealTimeServer.load_snapshot(
            tmp_path / "snap", _sccf(trained_fism), tiny_dataset
        )
        fresh.catch_up(tmp_path / "wal")
        _assert_parity(server, fresh, tiny_dataset)
        server.close()


class TestSchedulerCheckpointing:
    def test_checkpoints_on_cadence_and_prunes(self, tiny_dataset, trained_fism, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="always", segment_bytes=256)
        server = RealTimeServer(
            _sccf(trained_fism, fit_on=tiny_dataset), tiny_dataset, wal=wal
        )
        server.scheduler = MaintenanceScheduler(
            server,
            every_events=10_000,  # never maintain: isolate the checkpoint path
            checkpoint_every=5,
            snapshot_dir=tmp_path / "snap",
            snapshot_keep=2,
        )
        users = tiny_dataset.evaluation_users()
        for step in range(12):
            server.observe(users[step % 6], 1 + step % 3)
        assert server.scheduler.checkpoints_run == 2
        assert list_generations(tmp_path / "snap")
        assert server.health().wal_lag <= 2
        FaultInjector().crash_wal_writer(wal)
        recovered = RealTimeServer.load_snapshot(
            tmp_path / "snap",
            _sccf(trained_fism),
            tiny_dataset,
            wal_dir=tmp_path / "wal",
        )
        _assert_parity(server, recovered, tiny_dataset)
        server.close()

    def test_checkpoint_failure_is_contained(self, tiny_dataset, trained_fism, tmp_path):
        server = RealTimeServer(
            _sccf(trained_fism, fit_on=tiny_dataset),
            tiny_dataset,
            wal_dir=tmp_path / "wal",
            wal_fsync="always",
        )
        server.scheduler = MaintenanceScheduler(
            server,
            every_events=10_000,
            checkpoint_every=2,
            snapshot_dir=tmp_path / "snap",
        )
        FaultInjector().fail_snapshot_commit(times=1, filename="manifest.json")
        users = tiny_dataset.evaluation_users()
        server.observe(users[0], 1)
        server.observe(users[1], 2)  # trips the checkpoint; the commit crashes
        assert server.scheduler.checkpoint_failures == 1
        assert server.scheduler.last_failure is not None
        assert server.history(users[1])[-1] == 2  # ingestion unharmed
        server.observe(users[2], 1)
        server.observe(users[3], 2)  # next cadence: snapshot commits fine
        assert server.scheduler.checkpoints_run == 1
        server.close()

    def test_checkpoint_configuration_validation(self, tiny_dataset, trained_fism, tmp_path):
        server = RealTimeServer(
            _sccf(trained_fism, fit_on=tiny_dataset), tiny_dataset
        )
        with pytest.raises(ValueError, match="checkpoint_every"):
            MaintenanceScheduler(server, checkpoint_every=0, snapshot_dir=tmp_path)
        with pytest.raises(ValueError, match="snapshot_dir"):
            MaintenanceScheduler(server, checkpoint_every=4)
        with pytest.raises(ValueError, match="snapshot_keep"):
            MaintenanceScheduler(
                server, checkpoint_every=4, snapshot_dir=tmp_path, snapshot_keep=0
            )


class TestHealthAndFailureSurfacing:
    def test_health_surfaces_wal_counters(self, durable_server, tiny_dataset):
        for user in tiny_dataset.evaluation_users()[:3]:
            durable_server.observe(user, 1)
        report = durable_server.health()
        assert report.wal_lag == 3
        assert report.wal_fsyncs == 3  # fsync="always": one per observe
        assert report.wal_fsync_failures == 0
        assert report.wal.last_seq == 3

    def test_health_without_wal_reports_none(self, tiny_dataset, trained_fism):
        server = RealTimeServer(_sccf(trained_fism, fit_on=tiny_dataset), tiny_dataset)
        report = server.health()
        assert report.wal_lag is None
        assert report.wal_fsyncs is None
        assert report.wal is None

    def test_fsync_failure_fails_the_observe_without_applying(
        self, durable_server, tiny_dataset
    ):
        user = tiny_dataset.evaluation_users()[0]
        durable_server.observe(user, 1)
        FaultInjector().fail_wal_fsync(times=1)
        with pytest.raises(WALError):
            durable_server.observe(user, 2)
        # Journal-first: an event whose durability failed was never applied,
        # so the server does not acknowledge state the disk may not hold —
        # and the failed append was rolled back, so the journal does not
        # hold an event the server refused (state and journal agree).
        assert durable_server.history(user)[-1] == 1
        assert durable_server.health().wal_fsync_failures == 1
        assert durable_server.wal.last_seq == durable_server._wal_applied_seq == 1
        durable_server.observe(user, 3)  # the patch removed itself
        assert durable_server.history(user)[-1] == 3
        journaled = [
            decode_payload(payload)[1] for _, payload in durable_server.wal.replay()
        ]
        assert journaled == [[(user, 1)], [(user, 3)]]  # no orphan (user, 2)

    def test_wal_dir_and_wal_are_mutually_exclusive(
        self, tiny_dataset, trained_fism, tmp_path
    ):
        wal = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(ValueError, match="not both"):
            RealTimeServer(
                _sccf(trained_fism, fit_on=tiny_dataset),
                tiny_dataset,
                wal_dir=tmp_path / "other",
                wal=wal,
            )
        wal.close()


# --------------------------------------------------------------------- #
# the property: crash anywhere == replay of exactly the committed prefix
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("policy", ["always", "batch", "interval"])
@given(data=st.data())
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_crash_at_random_offset_recovers_committed_prefix(
    policy, data, tiny_dataset, trained_fism
):
    """Random op stream, crash at a random byte → recovery is bit-identical
    to replaying exactly the records that still verify before the damage.

    The crash is simulated on the journal bytes themselves (truncate at or
    bit-flip after a drawn offset), so the *fsync policy* under test shapes
    the write path while the damage point — not the flush schedule — defines
    the committed prefix.  Recovery (the owning reopen inside
    ``load_snapshot``) and the oracle (a clean server catching up from an
    undamaged copy truncated at the last record boundary before the damage)
    must agree exactly.
    """

    users = tiny_dataset.evaluation_users()
    ops = data.draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("observe"),
                    st.integers(0, len(users) - 1),
                    st.integers(1, tiny_dataset.num_items - 1),
                ),
                st.just(("maintain",)),
                st.just(("snapshot",)),
            ),
            min_size=3,
            max_size=10,
        )
    )
    workdir = Path(tempfile.mkdtemp(prefix="durability-"))
    try:
        waldir, snapdir = workdir / "wal", workdir / "snap"
        server = RealTimeServer(
            _sccf(trained_fism, fit_on=tiny_dataset),
            tiny_dataset,
            wal=WriteAheadLog(waldir, fsync=policy, batch_records=3, interval_ms=1e9),
        )
        server.save_snapshot(snapdir)
        for op in ops:
            if op[0] == "observe":
                server.observe(users[op[1]], op[2])
            elif op[0] == "maintain":
                server.maintain(imbalance_threshold=0.5)
            else:
                server.save_snapshot(snapdir)
        server.sync_wal()  # everything journaled is now on-disk bytes
        FaultInjector().crash_wal_writer(server.wal)  # lock dies with the process

        segment = max(waldir.glob("wal-*.seg"))
        pristine = workdir / "pristine"
        shutil.copytree(waldir, pristine)
        size = segment.stat().st_size
        if size:  # all-snapshot op streams journal nothing: crash the empty tail as-is
            mode = data.draw(st.sampled_from(["truncate", "flip"]))
            offset = data.draw(st.integers(0, size - 1))
            raw = segment.read_bytes()
            if mode == "truncate":
                damaged = raw[:offset]
            else:
                flipped = bytearray(raw)
                flipped[offset] ^= 0xFF
                damaged = bytes(flipped)
            segment.write_bytes(damaged)  # repolint: disable=RL008 -- deliberate corruption

        recovered = RealTimeServer.load_snapshot(
            snapdir, _sccf(trained_fism), tiny_dataset, wal_dir=waldir
        )
        committed_seq = recovered._wal_applied_seq

        # Oracle: replay exactly the committed prefix from the pristine copy.
        records, _ = scan_segment(pristine / segment.name)
        boundary = 0
        for seq, _, _, end in records:
            if seq <= committed_seq:
                boundary = end
        with open(pristine / segment.name, "r+b") as handle:
            handle.truncate(boundary)
        expected = RealTimeServer.load_snapshot(
            snapdir, _sccf(trained_fism), tiny_dataset
        )
        expected.catch_up(pristine)

        _assert_parity(expected, recovered, tiny_dataset)
        recovered.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
