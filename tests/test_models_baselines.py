"""Tests for the non-SCCF baselines: Pop, ItemKNN, UserKNN, BPR-MF."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import InteractionLog, RecDataset
from repro.eval import Evaluator
from repro.models import BPRMF, ItemKNN, Popularity, UserKNN
from repro.models.base import exclude_seen_items


@pytest.fixture()
def structured_dataset() -> RecDataset:
    """A tiny dataset with obvious co-occurrence structure.

    Users 0-2 like items 0-3; users 3-5 like items 4-7.  Each user's test item
    is another item of her own block, so item/user-based CF should easily
    recover it.
    """

    users, items = [], []
    blocks = {0: [0, 1, 2, 3], 1: [4, 5, 6, 7]}
    test_items = {}
    for user in range(6):
        block = blocks[0] if user < 3 else blocks[1]
        consumed = block[:3] if user % 2 == 0 else block[1:]
        for item in consumed:
            users.append(user)
            items.append(item)
        test_items[user] = block[3] if user % 2 == 0 else block[0]
    log = InteractionLog(users, items, list(range(len(users))))
    return RecDataset(
        name="structured",
        train=log,
        validation_items={},
        test_items=test_items,
        num_users=6,
        num_items=8,
    )


class TestExcludeSeen:
    def test_masks_only_seen(self):
        scores = np.arange(5, dtype=float)
        masked = exclude_seen_items(scores, [1, 3])
        assert np.isneginf(masked[[1, 3]]).all()
        np.testing.assert_allclose(masked[[0, 2, 4]], [0.0, 2.0, 4.0])

    def test_original_untouched(self):
        scores = np.ones(3)
        exclude_seen_items(scores, [0])
        np.testing.assert_allclose(scores, np.ones(3))


class TestPopularity:
    def test_scores_follow_counts(self, tiny_dataset):
        model = Popularity().fit(tiny_dataset)
        scores = model.score_items(0)
        counts = tiny_dataset.train.item_popularity(tiny_dataset.num_items)
        assert scores.argmax() == counts.argmax()

    def test_same_scores_for_all_users(self, tiny_dataset):
        model = Popularity().fit(tiny_dataset)
        np.testing.assert_allclose(model.score_items(0), model.score_items(5))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Popularity().score_items(0)

    def test_recommend_excludes_seen(self, tiny_dataset):
        model = Popularity().fit(tiny_dataset)
        history = tiny_dataset.train.user_sequence(0)
        recs = model.recommend(0, k=10, exclude=history)
        assert not set(recs) & set(history)

    def test_recommend_k_validation(self, tiny_dataset):
        model = Popularity().fit(tiny_dataset)
        with pytest.raises(ValueError):
            model.recommend(0, k=0)


class TestItemKNN:
    def test_similarity_matrix_properties(self, structured_dataset):
        model = ItemKNN().fit(structured_dataset)
        sim = model._similarity
        assert sim.shape == (8, 8)
        np.testing.assert_allclose(np.diag(sim), np.zeros(8))
        np.testing.assert_allclose(sim, sim.T, atol=1e-12)
        assert sim.max() <= 1.0 + 1e-9

    def test_block_structure_recovered(self, structured_dataset):
        model = ItemKNN().fit(structured_dataset)
        sim = model._similarity
        # items inside a block are more similar than across blocks
        assert sim[0, 1] > sim[0, 5]

    def test_recommends_within_block(self, structured_dataset):
        model = ItemKNN().fit(structured_dataset)
        history = structured_dataset.train.user_sequence(0)
        recs = model.recommend(0, k=2, exclude=history)
        # the top recommendation must be the remaining item of the user's block
        assert recs[0] == 3

    def test_top_k_pruning(self, structured_dataset):
        pruned = ItemKNN(top_k=1).fit(structured_dataset)
        full = ItemKNN().fit(structured_dataset)
        assert (pruned._similarity > 0).sum() <= (full._similarity > 0).sum()

    def test_empty_history_scores_zero(self, structured_dataset):
        model = ItemKNN().fit(structured_dataset)
        np.testing.assert_allclose(model.score_items(0, history=[]), np.zeros(8))

    def test_beats_popularity_on_structured_data(self, structured_dataset):
        evaluator = Evaluator(cutoffs=(2,))
        pop = Popularity().fit(structured_dataset)
        knn = ItemKNN().fit(structured_dataset)
        pop_result = evaluator.evaluate(pop, structured_dataset)
        knn_result = evaluator.evaluate(knn, structured_dataset)
        assert knn_result.metrics["HR@2"] >= pop_result.metrics["HR@2"]


class TestUserKNN:
    def test_recommends_within_block(self, structured_dataset):
        model = UserKNN(num_neighbors=3).fit(structured_dataset)
        history = structured_dataset.train.user_sequence(0)
        recs = model.recommend(0, k=2, exclude=history)
        # the top recommendation must be the remaining item of the user's block
        assert recs[0] == 3

    def test_score_with_explicit_history(self, structured_dataset):
        model = UserKNN(num_neighbors=3).fit(structured_dataset)
        scores = model.score_items(0, history=[4, 5])
        # With a block-1 history, block-1 items should now score highest.
        assert scores[[6, 7]].max() >= scores[[0, 1, 2, 3]].max()

    def test_realtime_update_appends_history(self, structured_dataset):
        model = UserKNN(num_neighbors=3).fit(structured_dataset)
        recs = model.realtime_update_and_recommend(0, 4, k=3)
        assert isinstance(recs, list) and len(recs) == 3
        assert 4 in model._user_histories[0]

    def test_realtime_update_invalid_item(self, structured_dataset):
        model = UserKNN().fit(structured_dataset)
        with pytest.raises(ValueError):
            model.realtime_update_and_recommend(0, 99)

    def test_invalid_neighbors(self):
        with pytest.raises(ValueError):
            UserKNN(num_neighbors=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            UserKNN().score_items(0)


class TestBPRMF:
    def test_training_reduces_loss(self, tiny_dataset):
        model = BPRMF(embedding_dim=8, num_epochs=4, seed=0).fit(tiny_dataset)
        assert len(model.loss_history) == 4
        assert model.loss_history[-1] < model.loss_history[0]

    def test_score_shape(self, tiny_dataset):
        model = BPRMF(embedding_dim=8, num_epochs=1, seed=0).fit(tiny_dataset)
        assert model.score_items(0).shape == (tiny_dataset.num_items,)

    def test_cold_user_fallback(self, tiny_dataset):
        model = BPRMF(embedding_dim=8, num_epochs=1, seed=0).fit(tiny_dataset)
        scores = model.score_items(tiny_dataset.num_users + 5)
        assert scores.shape == (tiny_dataset.num_items,)
        assert np.all(np.isfinite(scores))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BPRMF(embedding_dim=0)
        with pytest.raises(ValueError):
            BPRMF(num_epochs=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BPRMF().score_items(0)
