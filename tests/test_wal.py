"""Unit tests for the write-ahead log (``repro.core.wal``).

Covers the record codec (framing, CRC, splice resistance), segment scan and
rotation, torn-tail recovery on reopen, the three fsync policies' observable
flush cadence, pruning against a checkpoint, the read-only replica replay,
and the WAL-specific faults of :class:`repro.testing.FaultInjector`.
"""

from __future__ import annotations

import pytest

from repro.core.wal import (
    MAX_RECORD_BYTES,
    WALError,
    WriteAheadLog,
    _decode_at,
    decode_payload,
    encode_events,
    encode_maintain,
    encode_record,
    replay_wal,
    scan_segment,
)
from repro.testing import FaultInjector, InjectedFault


def fill(wal: WriteAheadLog, count: int, start: int = 0) -> None:
    for value in range(start, start + count):
        wal.append(f"payload-{value}".encode())


# --------------------------------------------------------------------- #
# record codec
# --------------------------------------------------------------------- #
class TestRecordCodec:
    def test_roundtrip(self):
        data = encode_record(7, b"hello")
        assert _decode_at(data, 0) == (7, b"hello", len(data))

    def test_empty_payload_roundtrips(self):
        data = encode_record(1, b"")
        assert _decode_at(data, 0) == (1, b"", 16)

    def test_bit_flip_anywhere_is_detected(self):
        data = bytearray(encode_record(3, b"abcdef"))
        for offset in range(len(data)):
            corrupt = bytearray(data)
            corrupt[offset] ^= 0x01
            decoded = _decode_at(bytes(corrupt), 0)
            # Either the record fails verification outright, or the flip hit
            # the length field and the frame no longer lines up.
            assert decoded is None or decoded != (3, b"abcdef", len(data))

    def test_crc_binds_sequence_number(self):
        # Splice resistance: re-numbering a record must fail the checksum,
        # even though the payload bytes are untouched.
        framed = encode_record(5, b"x")
        renumbered = framed[:8] + (9).to_bytes(8, "little") + framed[16:]
        assert _decode_at(renumbered, 0) is None

    def test_truncated_record_is_torn(self):
        data = encode_record(1, b"payload")
        for keep in range(len(data)):
            assert _decode_at(data[:keep], 0) is None

    def test_invalid_seq_rejected(self):
        with pytest.raises(WALError):
            encode_record(0, b"x")

    def test_oversized_payload_rejected(self):
        with pytest.raises(WALError):
            encode_record(1, b"\x00" * (MAX_RECORD_BYTES + 1))

    def test_events_payload_roundtrip(self):
        payload = encode_events([(3, 14), (1, 5)])
        assert decode_payload(payload) == ("events", [(3, 14), (1, 5)])

    def test_maintain_payload_roundtrip(self):
        kind, body = decode_payload(encode_maintain(0.25, True))
        assert kind == "maintain"
        assert body == {"threshold": 0.25, "shadow": True}

    def test_unknown_payload_kind_raises(self):
        with pytest.raises(WALError):
            decode_payload(b"\xff junk")
        with pytest.raises(WALError):
            decode_payload(b"")


# --------------------------------------------------------------------- #
# appending, rotation, reopen
# --------------------------------------------------------------------- #
class TestAppend:
    def test_sequences_are_monotonic_from_one(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            assert [wal.append(b"a"), wal.append(b"b"), wal.append(b"c")] == [1, 2, 3]

    def test_append_batch_shares_one_commit_decision(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="always") as wal:
            assert wal.append_batch([b"a", b"b", b"c"]) == 3
            assert wal.stats().fsyncs == 1  # one flush for the whole batch
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path).append_batch([])

    def test_reopen_continues_the_sequence(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 5)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_seq == 5
            assert wal.append(b"next") == 6

    def test_rotation_produces_multiple_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=128) as wal:
            fill(wal, 20)
            stats = wal.stats()
            assert stats.segments > 1
            assert [seq for seq, _ in wal.replay()] == list(range(1, 21))

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(b"a")
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(WALError):
            wal.append(b"b")

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path, fsync="never")
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path, batch_records=0)
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path, interval_ms=-1.0)
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path, segment_bytes=0)


# --------------------------------------------------------------------- #
# fsync policies
# --------------------------------------------------------------------- #
class TestFsyncPolicies:
    def test_always_flushes_every_append(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="always") as wal:
            fill(wal, 5)
            assert wal.stats().fsyncs == 5
            assert wal.stats().pending == 0

    def test_batch_flushes_every_n_records(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="batch", batch_records=3) as wal:
            fill(wal, 10)
            stats = wal.stats()
            assert stats.fsyncs == 3  # after records 3, 6, 9
            assert stats.pending == 1  # record 10 awaits the next group

    def test_interval_policy_flushes_on_cadence(self, tmp_path):
        # interval_ms=0: every append is past the cadence, so it flushes.
        with WriteAheadLog(tmp_path, fsync="interval", interval_ms=0.0) as wal:
            fill(wal, 4)
            assert wal.stats().fsyncs == 4
        # A huge interval never flushes on its own.
        with WriteAheadLog(tmp_path, fsync="interval", interval_ms=1e9) as wal:
            fill(wal, 4, start=100)
            assert wal.stats().fsyncs == 0
            wal.sync()
            assert wal.stats().fsyncs == 1
            assert wal.stats().pending == 0

    def test_close_flushes_lazy_tail(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="batch", batch_records=100)
        fill(wal, 5)
        assert wal.stats().fsyncs == 0
        wal.close()
        assert wal.stats().fsyncs == 1

    def test_sync_is_noop_when_clean(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="always") as wal:
            wal.append(b"a")
            before = wal.stats().fsyncs
            wal.sync()
            assert wal.stats().fsyncs == before


# --------------------------------------------------------------------- #
# torn tails & recovery
# --------------------------------------------------------------------- #
class TestRecovery:
    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 8)
        injector = FaultInjector(seed=11)
        segment = next(tmp_path.glob("wal-*.seg"))
        intact = len(scan_segment(segment)[0])
        dropped = injector.torn_wal_tail(tmp_path, drop_bytes=5)
        assert dropped == 5
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_seq == 7  # record 8 lost its tail bytes
            assert wal.truncated_bytes > 0
            assert wal.append(b"again") == 8
        assert intact == 8

    def test_bit_flip_truncates_from_damaged_record(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 6)
        # Flip a byte inside record 3's payload: records 1-2 survive, the
        # rest are discarded even though their own bytes are intact.
        segment = next(tmp_path.glob("wal-*.seg"))
        records, _ = scan_segment(segment)
        offset_in_record_3 = records[2][2] + 16
        FaultInjector().flip_wal_byte(tmp_path, offset=offset_in_record_3)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_seq == 2
            assert [seq for seq, _ in wal.replay()] == [1, 2]

    def test_damage_in_older_segment_discards_later_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=128) as wal:
            fill(wal, 20)
        segments = sorted(tmp_path.glob("wal-*.seg"))
        assert len(segments) > 2
        first_records, _ = scan_segment(segments[0])
        # Tear the *first* segment mid-record: everything before the tear
        # survives, the later segments are dropped wholesale even though
        # their own bytes are intact (they are beyond the first damage).
        data = segments[0].read_bytes()
        segments[0].write_bytes(data[: first_records[-1][2] + 3])
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_seq == first_records[-2][0]
            assert wal.stats().segments == 1  # the repaired prefix is the tail again
            assert not segments[1].exists() and not segments[-1].exists()

    def test_crash_mid_append_recovers_committed_prefix(self, tmp_path):
        injector = FaultInjector(seed=5)
        with WriteAheadLog(tmp_path, fsync="always") as wal:
            fill(wal, 4)
            injector.crash_wal_mid_append(times=1, keep_bytes=7)
            with pytest.raises(InjectedFault):
                wal.append(b"doomed")
        with WriteAheadLog(tmp_path) as recovered:
            assert recovered.last_seq == 4
            assert recovered.truncated_bytes == 7
            assert recovered.append(b"after") == 5

    def test_fsync_failure_rolls_back_the_failed_append(self, tmp_path):
        injector = FaultInjector()
        with WriteAheadLog(tmp_path, fsync="always") as wal:
            injector.fail_wal_fsync(times=1)
            with pytest.raises(WALError):
                wal.append(b"unlucky")
            # The failed call is erased whole: were the record kept, recovery
            # would replay an event the caller was told failed, and a retry
            # would journal a duplicate under a fresh sequence.
            stats = wal.stats()
            assert stats.fsync_failures == 1
            assert (wal.last_seq, stats.records, stats.pending) == (0, 0, 0)
            assert list(wal.replay()) == []
            # The patch removed itself: a retry re-journals under the very
            # sequence the failed call briefly held — no duplicate, no gap.
            assert wal.append(b"lucky") == 1
            assert wal.stats().fsync_failures == 1
            assert [(seq, payload) for seq, payload in wal.replay()] == [(1, b"lucky")]

    def test_fsync_failure_keeps_earlier_acknowledged_records(self, tmp_path):
        # Group commit: records 1-2 were acknowledged by earlier calls (their
        # durability window is the batch policy's promise); only the call
        # whose commit failed is rolled back.
        with WriteAheadLog(tmp_path, fsync="batch", batch_records=3) as wal:
            wal.append(b"a")
            wal.append(b"b")
            FaultInjector().fail_wal_fsync(times=1)
            with pytest.raises(WALError):
                wal.append(b"c")  # trips the group commit, which fails
            assert wal.last_seq == 2
            assert wal.stats().pending == 2
            assert wal.append(b"c-retry") == 3  # group commit retries and lands
            assert wal.stats().pending == 0
            assert [seq for seq, _ in wal.replay()] == [1, 2, 3]

    def test_append_batch_rollback_spans_rotation(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="always", segment_bytes=100) as wal:
            wal.append(b"a" * 60)  # 76 bytes: segment 1 fills mid-batch below
            # Let the rotation's sync-before-rotate flush pass; fail the
            # batch's own group-commit fsync afterwards.
            FaultInjector().fail_wal_fsync(times=1, after=1)
            with pytest.raises(WALError):
                wal.append_batch([b"b" * 60, b"c" * 60])
            # The segment the failed batch created is gone with its records.
            assert wal.last_seq == 1
            assert wal.stats().segments == 1
            assert [seq for seq, _ in wal.replay()] == [1]
            assert wal.append(b"d") == 2
            assert [seq for seq, _ in wal.replay()] == [1, 2]

    def test_corruption_faults_require_journal_bytes(self, tmp_path):
        injector = FaultInjector()
        with pytest.raises(RuntimeError):
            injector.torn_wal_tail(tmp_path)
        with pytest.raises(RuntimeError):
            injector.flip_wal_byte(tmp_path)

    def test_duplicated_record_fails_the_continuity_check(self, tmp_path):
        # A CRC-valid record spliced to another position passes the checksum
        # (the CRC binds seq to payload, not seq to file offset) — position
        # is verified by sequence continuity instead: the duplicate is
        # damage, and scan/replay/recovery all stop right before it.
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 3)
        segment = next(tmp_path.glob("wal-*.seg"))
        records, _ = scan_segment(segment)
        replayed = segment.read_bytes()[records[1][2] : records[1][3]]
        with open(segment, "ab") as handle:
            handle.write(replayed)  # repolint: disable=RL008 -- deliberate splice
        rescanned, good = scan_segment(segment)
        assert [seq for seq, _, _, _ in rescanned] == [1, 2, 3]
        assert good == records[2][3]  # stops before the duplicate
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1, 2, 3]
        with WriteAheadLog(tmp_path) as recovered:
            assert recovered.last_seq == 3
            assert recovered.truncated_bytes == len(replayed)

    def test_segment_not_anchored_at_its_filename_is_damage(self, tmp_path):
        # A whole segment relocated under another base sequence (copied or
        # renamed) must not replay: its records sit at the wrong positions.
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 4)
        segment = next(tmp_path.glob("wal-*.seg"))
        segment.rename(tmp_path / "wal-0000000000000009.seg")
        assert list(replay_wal(tmp_path)) == []
        with WriteAheadLog(tmp_path) as recovered:
            assert recovered.last_seq == 0


# --------------------------------------------------------------------- #
# the single-writer lock
# --------------------------------------------------------------------- #
class TestSingleWriterLock:
    def test_second_writer_fails_fast(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(b"a")
            size = next(tmp_path.glob("wal-*.seg")).stat().st_size
            with pytest.raises(WALError, match="another writer"):
                WriteAheadLog(tmp_path)
            # Fail-fast matters because the alternative is carnage: a second
            # owning open would have run recovery and truncated the live
            # writer's tail.  Nothing was touched.
            assert next(tmp_path.glob("wal-*.seg")).stat().st_size == size
        # close() released the lock: the next owning open succeeds.
        with WriteAheadLog(tmp_path) as again:
            assert again.last_seq == 1

    def test_crashed_writer_releases_lock_without_flushing(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="batch", batch_records=100)
        fill(wal, 3)
        FaultInjector().crash_wal_writer(wal)
        assert wal.stats().fsyncs == 0  # death, not a clean close
        with pytest.raises(WALError):
            wal.append(b"from beyond the grave")
        # The lock died with the "process": recovery takes ownership.
        with WriteAheadLog(tmp_path) as recovered:
            assert recovered.last_seq == 3


# --------------------------------------------------------------------- #
# replay & pruning
# --------------------------------------------------------------------- #
class TestReplayAndPrune:
    def test_replay_after_seq_skips_committed_prefix(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 6)
            assert [seq for seq, _ in wal.replay(after_seq=4)] == [5, 6]

    def test_replay_wal_is_read_only_on_damage(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 5)
        FaultInjector().torn_wal_tail(tmp_path, drop_bytes=3)
        segment = next(tmp_path.glob("wal-*.seg"))
        size_before = segment.stat().st_size
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1, 2, 3, 4]
        # A replica's scan must never repair the primary's journal.
        assert segment.stat().st_size == size_before

    def test_replay_of_missing_directory_is_empty(self, tmp_path):
        assert list(replay_wal(tmp_path / "nowhere")) == []

    def test_prune_removes_only_wholly_covered_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=128) as wal:
            fill(wal, 20)
            segments = sorted(tmp_path.glob("wal-*.seg"))
            boundary = int(segments[1].name[4:-4]) - 1  # last seq in segment 0
            assert wal.prune(upto_seq=boundary - 1) == 0  # partial cover: keep
            assert wal.prune(upto_seq=boundary) == 1
            assert wal.checkpoint_seq == boundary
            assert [seq for seq, _ in wal.replay()][0] == boundary + 1

    def test_prune_never_touches_active_segment(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 5)
            assert wal.prune(upto_seq=5) == 0
            assert wal.stats().segments == 1
            assert wal.stats().lag == 0  # checkpoint still advanced

    def test_stats_lag_tracks_checkpoint(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 10)
            wal.prune(upto_seq=4)
            stats = wal.stats()
            assert (stats.last_seq, stats.checkpoint_seq, stats.lag) == (10, 4, 6)
            assert stats.records == 10
            assert stats.bytes_written > 0
