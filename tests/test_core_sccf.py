"""Tests for the SCCF framework (fitting, modes, candidate lists, scoring)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SCCF, SCCFConfig
from repro.models import Popularity


class TestConstruction:
    def test_requires_inductive_ui_model(self, tiny_dataset):
        pop = Popularity().fit(tiny_dataset)
        with pytest.raises(TypeError):
            SCCF(pop)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SCCFConfig(num_neighbors=0)
        with pytest.raises(ValueError):
            SCCFConfig(candidate_list_size=0)
        with pytest.raises(ValueError):
            SCCFConfig(recency_window=0)

    def test_unfitted_raises(self, trained_fism):
        sccf = SCCF(trained_fism)
        with pytest.raises(RuntimeError):
            sccf.score_items(0)

    def test_mode_validation(self, fitted_sccf):
        with pytest.raises(ValueError):
            fitted_sccf.set_mode("bogus")

    def test_name_reflects_mode(self, fitted_sccf):
        assert fitted_sccf.set_mode("ui").name == "FISM"
        assert fitted_sccf.set_mode("uu").name == "FISMUU"
        assert fitted_sccf.set_mode("sccf").name == "FISMSCCF"


class TestScoring:
    def test_ui_mode_matches_base_model(self, fitted_sccf, trained_fism, tiny_dataset):
        user = tiny_dataset.evaluation_users()[0]
        history = tiny_dataset.train.user_sequence(user)
        fitted_sccf.set_mode("ui")
        np.testing.assert_allclose(
            fitted_sccf.score_items(user, history=history),
            trained_fism.score_items(user, history=history),
        )

    def test_uu_mode_matches_neighborhood(self, fitted_sccf, tiny_dataset):
        user = tiny_dataset.evaluation_users()[0]
        history = tiny_dataset.train.user_sequence(user)
        fitted_sccf.set_mode("uu")
        scores = fitted_sccf.score_items(user, history=history)
        embedding = fitted_sccf.ui_model.infer_user_embedding(history)
        expected = fitted_sccf.neighborhood.score_for_user(user, embedding, history=history)
        np.testing.assert_allclose(scores, expected)

    def test_sccf_mode_scores_only_candidates(self, fitted_sccf, tiny_dataset):
        user = tiny_dataset.evaluation_users()[0]
        history = tiny_dataset.train.user_sequence(user)
        fitted_sccf.set_mode("sccf")
        scores = fitted_sccf.score_items(user, history=history)
        finite = np.isfinite(scores) & (scores > -1e11)
        ui_list, uu_list = fitted_sccf.candidate_lists(user, history=history)
        candidate_union = set(ui_list.tolist()) | set(uu_list.tolist())
        assert set(np.where(finite)[0].tolist()) <= candidate_union

    def test_candidate_lists_sorted_and_sized(self, fitted_sccf, tiny_dataset):
        user = tiny_dataset.evaluation_users()[0]
        ui_list, uu_list = fitted_sccf.candidate_lists(user)
        assert len(ui_list) <= fitted_sccf.config.candidate_list_size
        assert len(uu_list) <= fitted_sccf.config.candidate_list_size
        # The UI list must not contain items the user has already seen.
        history = set(tiny_dataset.train.user_sequence(user))
        assert not set(ui_list.tolist()) & history
        assert not set(uu_list.tolist()) & history

    def test_recommend_excludes_history(self, fitted_sccf, tiny_dataset):
        user = tiny_dataset.evaluation_users()[0]
        history = tiny_dataset.train.user_sequence(user)
        fitted_sccf.set_mode("sccf")
        recommendations = fitted_sccf.recommend(user, k=5, exclude=history)
        assert not set(recommendations) & set(history)
        assert len(recommendations) <= 5

    def test_scores_deterministic(self, fitted_sccf, tiny_dataset):
        user = tiny_dataset.evaluation_users()[0]
        fitted_sccf.set_mode("sccf")
        first = fitted_sccf.score_items(user)
        second = fitted_sccf.score_items(user)
        np.testing.assert_allclose(first, second)


class TestMergeCandidates:
    def test_merged_candidates_deduplicated_and_seen_free(self, fitted_sccf, tiny_dataset):
        """The unsorted-unique merge keeps union1d's set semantics."""

        for user in tiny_dataset.evaluation_users()[:5]:
            history = tiny_dataset.train.user_sequence(user)
            embedding = fitted_sccf.ui_model.infer_user_embedding(history)
            ui_scores = fitted_sccf.ui_model.ui_scores(embedding)
            uu_scores = fitted_sccf.neighborhood.score_for_user(user, embedding, history=history)
            merged = fitted_sccf._merge_candidates(ui_scores, uu_scores, history)
            # deduplicated
            assert len(merged) == len(set(merged.tolist()))
            # no already-seen items
            assert not set(merged.tolist()) & set(history)
            # same candidate *set* as the old sorted union
            from repro.models.base import exclude_seen_items

            size = min(fitted_sccf.config.candidate_list_size, fitted_sccf.num_items)
            ui_top = fitted_sccf._top_k(exclude_seen_items(ui_scores, history), size)
            uu_top = fitted_sccf._top_k(
                exclude_seen_items(uu_scores, history), size, positive_only=True
            )
            np.testing.assert_array_equal(np.sort(merged), np.union1d(ui_top, uu_top))

    def test_merge_with_overlapping_lists(self, fitted_sccf):
        ui_scores = np.zeros(fitted_sccf.num_items)
        uu_scores = np.zeros(fitted_sccf.num_items)
        ui_scores[[1, 2, 3]] = [3.0, 2.0, 1.0]
        uu_scores[[2, 3, 4]] = [3.0, 2.0, 1.0]
        merged = fitted_sccf._merge_candidates(ui_scores, uu_scores, history=[])
        assert len(merged) == len(set(merged.tolist()))
        assert {2, 3, 4} <= set(merged.tolist())


class TestFitting:
    def test_fit_without_refitting_ui_model(self, tiny_dataset, trained_fism):
        item_table_before = trained_fism.item_embeddings().copy()
        sccf = SCCF(trained_fism, SCCFConfig(num_neighbors=5, candidate_list_size=20, merger_epochs=2))
        sccf.fit(tiny_dataset, fit_ui_model=False)
        np.testing.assert_allclose(trained_fism.item_embeddings(), item_table_before)

    def test_fit_trains_ui_model_when_requested(self, tiny_dataset):
        from repro.models import FISM

        fism = FISM(embedding_dim=8, num_epochs=1, seed=9)
        sccf = SCCF(fism, SCCFConfig(num_neighbors=5, candidate_list_size=20, merger_epochs=2))
        sccf.fit(tiny_dataset, fit_ui_model=True)
        assert fism.loss_history  # the UI model actually trained

    def test_dimensions_recorded(self, fitted_sccf, tiny_dataset):
        assert fitted_sccf.num_users == tiny_dataset.num_users
        assert fitted_sccf.num_items == tiny_dataset.num_items
