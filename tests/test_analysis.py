"""Tests for the Figure 1 (interest drift) and Figure 4 (similarity) analyses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    CategoryDriftResult,
    candidate_similarity_distributions,
    category_drift_distribution,
    histogram,
)
from repro.data import Interaction, InteractionLog


def make_daily_log(events):
    """events: list of (user, item, day, category)."""

    log = InteractionLog(categories=[])
    for user, item, day, category in events:
        log.append(Interaction(user, item, float(day) + 0.5, category))
    return log


class TestCategoryDrift:
    def test_all_new_categories(self):
        # The user clicks categories on day 14 never seen before.
        events = [(0, 0, 3, 1), (0, 1, 14, 2), (0, 2, 14, 3)]
        result = category_drift_distribution(make_daily_log(events), target_day=14, window_days=14)
        assert result.new_category_fraction == pytest.approx(1.0)

    def test_previously_seen_category_attributed_to_first_day(self):
        # Category 5 first clicked 4 days before the target day.
        events = [(0, 0, 10, 5), (0, 1, 12, 5), (0, 2, 14, 5)]
        result = category_drift_distribution(make_daily_log(events), target_day=14, window_days=14)
        assert result.proportions[4] == pytest.approx(1.0)
        assert result.new_category_fraction == 0.0

    def test_proportions_sum_to_one(self):
        events = [
            (0, 0, 14, 1), (0, 1, 14, 2), (0, 2, 10, 2),
            (1, 3, 14, 3), (1, 4, 5, 3), (1, 5, 14, 4),
        ]
        result = category_drift_distribution(make_daily_log(events), target_day=14)
        assert result.proportions.sum() == pytest.approx(1.0)
        assert result.num_users == 2

    def test_rows_format(self):
        events = [(0, 0, 14, 1)]
        result = category_drift_distribution(make_daily_log(events), target_day=14, window_days=3)
        rows = result.as_rows()
        assert len(rows) == 4
        assert rows[0]["days_before_today"] == 0

    def test_requires_categories(self):
        log = InteractionLog([0], [0], [14.0])
        with pytest.raises(ValueError):
            category_drift_distribution(log)

    def test_requires_events_on_target_day(self):
        events = [(0, 0, 3, 1)]
        with pytest.raises(ValueError):
            category_drift_distribution(make_daily_log(events), target_day=14)

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            category_drift_distribution(InteractionLog(categories=[]))

    def test_default_target_day_is_last(self):
        events = [(0, 0, 3, 1), (0, 1, 9, 2)]
        result = category_drift_distribution(make_daily_log(events), window_days=5)
        assert isinstance(result, CategoryDriftResult)

    def test_simulated_clickstream_has_substantial_new_fraction(self):
        """The Figure 1 headline: a large share of today's categories are new."""

        from repro.experiments import run_figure1

        result = run_figure1(num_users=80, num_days=15, seed=3)
        assert 0.2 < result.new_category_fraction < 0.9


class TestSimilarityDistribution:
    def test_distributions_computed(self, fitted_sccf, tiny_dataset):
        result = candidate_similarity_distributions(fitted_sccf, tiny_dataset, max_users=30)
        assert len(result.ground_truth) > 0
        assert len(result.ui_candidates) == len(result.uu_candidates) == len(result.ground_truth)
        means = result.means()
        assert set(means) == {"ground_truth", "ui", "uu"}
        # similarity values are cosines
        assert np.all(np.abs(result.ui_candidates) <= 1.0 + 1e-9)

    def test_figure4_shape_ui_above_uu(self, fitted_sccf, tiny_dataset):
        """The paper's qualitative claim: UI candidates are more similar to the
        user than the user-based candidates."""

        result = candidate_similarity_distributions(fitted_sccf, tiny_dataset)
        assert result.means()["ui"] > result.means()["uu"]

    def test_histogram_rows(self, fitted_sccf, tiny_dataset):
        result = candidate_similarity_distributions(fitted_sccf, tiny_dataset, max_users=20)
        rows = result.as_rows(bins=10)
        assert len(rows) == 10
        assert {"similarity", "ground_truth_users", "ui_users", "uu_users"} <= set(rows[0])

    def test_histogram_helper(self):
        centers, counts = histogram([0.1, 0.2, 0.9], bins=4)
        assert len(centers) == 4
        assert counts.sum() == 3
        centers, counts = histogram([], bins=4)
        assert len(centers) == 0
