"""Unit tests for interaction containers and dataset statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Interaction, InteractionLog, RecDataset
from repro.data.datasets import DatasetStatistics


class TestInteraction:
    def test_valid(self):
        event = Interaction(1, 2, 3.0, category_id=4)
        assert event.user_id == 1 and event.category_id == 4

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            Interaction(-1, 0)
        with pytest.raises(ValueError):
            Interaction(0, -1)


class TestInteractionLog:
    def test_length_and_iteration(self, simple_log):
        assert len(simple_log) == 12
        events = list(simple_log)
        assert all(isinstance(e, Interaction) for e in events)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            InteractionLog([0, 1], [0])
        with pytest.raises(ValueError):
            InteractionLog([0], [0], timestamps=[1.0, 2.0])
        with pytest.raises(ValueError):
            InteractionLog([0], [0], categories=[1, 2])

    def test_default_timestamps_are_sequential(self):
        log = InteractionLog([0, 0, 1], [1, 2, 3])
        np.testing.assert_allclose(log.timestamps, [0.0, 1.0, 2.0])

    def test_num_users_items(self, simple_log):
        assert simple_log.num_users == 3
        assert simple_log.num_items == 6

    def test_user_sequence_chronological(self, simple_log):
        assert simple_log.user_sequence(0) == [0, 1, 2, 3]
        assert simple_log.user_sequence(2) == [0, 4, 5, 1]

    def test_user_sequence_unknown_user(self, simple_log):
        assert simple_log.user_sequence(99) == []

    def test_user_item_set(self, simple_log):
        assert simple_log.user_item_set(1) == {1, 2, 3, 4}

    def test_append_invalidates_cache(self, simple_log):
        assert simple_log.user_sequence(0) == [0, 1, 2, 3]
        simple_log.append(Interaction(0, 5, 10.0))
        assert simple_log.user_sequence(0) == [0, 1, 2, 3, 5]

    def test_append_category_after_plain_log(self):
        log = InteractionLog([0], [1], [0.0])
        log.append(Interaction(0, 2, 1.0, category_id=7))
        assert log.categories is not None
        assert log.categories[-1] == 7

    def test_to_matrix_binary(self, simple_log):
        matrix = simple_log.to_matrix()
        assert matrix.shape == (3, 6)
        assert matrix.max() == 1.0
        assert matrix.sum() == 12

    def test_to_matrix_collapses_duplicates(self):
        log = InteractionLog([0, 0], [1, 1], [0.0, 1.0])
        matrix = log.to_matrix(1, 2)
        assert matrix[0, 1] == 1.0

    def test_to_matrix_custom_shape(self, simple_log):
        matrix = simple_log.to_matrix(num_users=10, num_items=20)
        assert matrix.shape == (10, 20)

    def test_empty_log(self):
        log = InteractionLog()
        assert len(log) == 0
        assert log.num_users == 0
        assert log.to_matrix(3, 4).shape == (3, 4)

    def test_item_popularity(self, simple_log):
        popularity = simple_log.item_popularity()
        assert popularity[1] == 3  # item 1 clicked by users 0, 1, 2
        assert popularity.sum() == 12

    def test_filter_users(self, simple_log):
        filtered = simple_log.filter_users([0])
        assert set(filtered.users.tolist()) == {0}
        assert len(filtered) == 4

    def test_filter_items(self, simple_log):
        filtered = simple_log.filter_items([0, 1])
        assert set(filtered.items.tolist()) <= {0, 1}

    def test_copy_is_independent(self, simple_log):
        clone = simple_log.copy()
        clone.append(Interaction(0, 5, 99.0))
        assert len(clone) == len(simple_log) + 1

    def test_from_interactions_roundtrip(self):
        events = [Interaction(0, 1, 0.0, 5), Interaction(1, 2, 1.0, 6)]
        log = InteractionLog.from_interactions(events)
        assert len(log) == 2
        assert log.categories is not None
        assert log.categories.tolist() == [5, 6]

    def test_interactions_per_user(self, simple_log):
        counts = simple_log.interactions_per_user()
        assert counts == {0: 4, 1: 4, 2: 4}

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 10)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_sequences_partition_the_log(self, pairs):
        users = [p[0] for p in pairs]
        items = [p[1] for p in pairs]
        log = InteractionLog(users, items)
        sequences = log.user_sequences()
        assert sum(len(seq) for seq in sequences.values()) == len(pairs)

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 8)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_matrix_nnz_matches_unique_pairs(self, pairs):
        users = [p[0] for p in pairs]
        items = [p[1] for p in pairs]
        log = InteractionLog(users, items)
        matrix = log.to_matrix()
        assert matrix.nnz == len(set(pairs))


class TestRecDataset:
    def test_statistics_fields(self, tiny_dataset):
        stats = tiny_dataset.statistics()
        assert isinstance(stats, DatasetStatistics)
        assert stats.num_users == tiny_dataset.num_users
        assert stats.num_actions >= len(tiny_dataset.train)
        assert 0 < stats.density < 1

    def test_statistics_row_format(self, tiny_dataset):
        row = tiny_dataset.statistics().as_row()
        assert set(row) == {"Dataset", "#users", "#items", "#actions", "avg.length", "density"}
        assert row["density"].endswith("%")

    def test_out_of_range_ids_rejected(self, simple_log):
        with pytest.raises(ValueError):
            RecDataset(name="bad", train=simple_log, num_users=2, num_items=6)
        with pytest.raises(ValueError):
            RecDataset(
                name="bad", train=simple_log, num_users=3, num_items=6, test_items={5: 0}
            )

    def test_evaluation_users_sorted(self, tiny_dataset):
        users = tiny_dataset.evaluation_users("test")
        assert users == sorted(users)
        assert all(u in tiny_dataset.test_items for u in users)

    def test_full_sequence_with_validation(self, tiny_dataset):
        user = tiny_dataset.evaluation_users("test")[0]
        base = tiny_dataset.full_sequence(user)
        extended = tiny_dataset.full_sequence(user, include_validation=True)
        assert len(extended) == len(base) + 1
        assert extended[-1] == tiny_dataset.validation_items[user]

    def test_with_validation_merged(self, tiny_dataset):
        merged = tiny_dataset.with_validation_merged()
        assert len(merged.train) == len(tiny_dataset.train) + len(tiny_dataset.validation_items)
        assert merged.validation_items == {}
        assert merged.test_items == tiny_dataset.test_items
